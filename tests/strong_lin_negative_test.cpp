// Mechanical REFUTATIONS of strong linearizability — the §5 side of the paper.
//
//  * Herlihy–Wing queue (fetch&add + swap): linearizable but not strongly
//    linearizable. Witness shape (cf. Lemma 12's disagreement scenario): once
//    Enq(10) has claimed slot 0 but not written it while Enq(20) completed, a
//    dequeuer either observes 20 (forcing 20 first) or, after the write lands,
//    observes 10 (forcing 10 first) — no single linearization of the common
//    prefix extends both futures.
//  * AADGMS snapshot (read/write): the original Golab–Higham–Woelfel exhibit.
//  * CollectMaxRegister (read/write): wait-free and linearizable; the
//    Denysyuk–Woelfel impossibility says unbounded wait-free SL max registers
//    from registers cannot exist, and the checker finds a concrete violation.
//
// Together with strong_lin_positive_test.cpp, this demonstrates that the
// checker separates the two classes — these verdicts are findings, not
// assumptions.
#include <gtest/gtest.h>

#include "baselines/aadgms_snapshot.h"
#include "baselines/herlihy_wing_queue.h"
#include "core/max_register_variants.h"
#include "harness.h"
#include "verify/specs.h"
#include "verify/strong_lin.h"

namespace c2sl {
namespace {

using verify::Invocation;

verify::StrongLinResult check(const sim::ScenarioFn& scenario, int n,
                              const verify::Spec& spec, const std::string& object,
                              int max_depth, size_t max_nodes) {
  sim::ExploreOptions opts;
  opts.max_depth = max_depth;
  opts.max_nodes = max_nodes;
  sim::ExecTree tree = sim::explore(n, scenario, opts);
  verify::StrongLinOptions slopts;
  slopts.object = object;
  slopts.max_search_nodes = 30'000'000;
  return verify::check_strong_linearizability(tree, spec, slopts);
}

TEST(StrongLinNegative, HerlihyWingQueueRefuted) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<baselines::HerlihyWingQueue>(w, "queue");
  };
  // p0: Enq(10); p1: Enq(20); p2: Deq. The conflict needs ~10 steps.
  auto scenario = testing::fixed_scenario(factory, {{{"Enq", num(10), 0}},
                                                    {{"Enq", num(20), 1}},
                                                    {{"Deq", unit(), 2}}});
  verify::QueueSpec spec;
  auto res = check(scenario, 3, spec, "queue", /*max_depth=*/14, /*max_nodes=*/500000);
  ASSERT_TRUE(res.decided) << "search budget exhausted";
  EXPECT_FALSE(res.strongly_linearizable)
      << "Herlihy-Wing queue must NOT be strongly linearizable (Theorem 17 regime)";
  EXPECT_GE(res.witness_node, 0);
  // The diagnostic report embeds the conflicting history.
  EXPECT_NE(res.report.find("no prefix-closed linearization function"),
            std::string::npos);
}

// Control: the same scenario IS linearizable on every explored schedule — the
// violation is about prefix-closure, not about linearizability.
TEST(StrongLinNegative, HerlihyWingQueueStillLinearizable) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<baselines::HerlihyWingQueue>(w, "queue");
  };
  auto scenario = testing::fixed_scenario(factory, {{{"Enq", num(10), 0}},
                                                    {{"Enq", num(20), 1}},
                                                    {{"Deq", unit(), 2}}});
  sim::ExploreOptions opts;
  opts.max_depth = 14;
  opts.max_nodes = 500000;
  sim::ExecTree tree = sim::explore(3, scenario, opts);
  verify::QueueSpec spec;
  int checked = 0;
  for (const auto& node : tree.nodes) {
    if (!node.all_done) continue;
    auto ops = verify::operations_from_events(tree.history_at(node.id));
    auto lin = verify::check_linearizability(verify::filter_object(ops, "queue"), spec);
    EXPECT_TRUE(lin.linearizable) << "node " << node.id << "\n" << lin.explanation;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// AADGMS operations are long (a scan is >= 2n reads), so the conflict region
// sits too deep for full-tree exploration. Guided refutation: sample random
// schedule prefixes and exhaustively explore the shallow subtree after each —
// a prefix-closure conflict inside ANY subtree refutes strong linearizability
// of the whole implementation.
TEST(StrongLinNegative, AadgmsSnapshotRefutedGuided) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<baselines::AadgmsSnapshot>(w, "snap", n);
  };
  auto scenario = testing::fixed_scenario(
      factory, {{{"Update", num(1), 0}, {"Update", num(2), 0}},
                {{"Scan", unit(), 1}},
                {{"Update", num(3), 2}}});
  verify::SnapshotSpec spec(3);

  bool refuted = false;
  for (uint64_t seed = 0; seed < 60 && !refuted; ++seed) {
    for (uint64_t prefix_len : {6u, 10u, 14u, 18u}) {
      // Record a replayable schedule prefix.
      sim::SimRun probe(3);
      scenario(probe);
      sim::RandomStrategy random(seed);
      sim::RecordingStrategy recorder(random);
      probe.sched.run(recorder, prefix_len);
      if (recorder.recorded().size() < prefix_len) break;  // programs finished

      sim::ExploreOptions opts;
      opts.prefix = recorder.recorded();
      opts.max_depth = 12;
      opts.max_nodes = 60000;
      sim::ExecTree tree = sim::explore(3, scenario, opts);
      verify::StrongLinOptions slopts;
      slopts.object = "snap";
      slopts.max_search_nodes = 4'000'000;
      auto res = verify::check_strong_linearizability(tree, spec, slopts);
      if (res.decided && !res.strongly_linearizable) {
        refuted = true;
        break;
      }
    }
  }
  EXPECT_TRUE(refuted)
      << "AADGMS snapshot must NOT be strongly linearizable (GHW 2011)";
}

// The plain Aspnes–Attiya–Censor tree max register (registers only) fails the
// model check as well: its read path chases switch bits whose meaning depends
// on concurrent writers, so read linearization points are future-dependent.
// (Helmi–Higham–Woelfel's positive result for bounded SL max registers uses a
// modified construction, which this exhibit motivates.)
TEST(StrongLinNegative, PlainAacTreeMaxRegisterRefuted) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<core::BoundedRWMaxRegister>(w, "maxreg", 4);
  };
  auto scenario = testing::fixed_scenario(factory, {{{"WriteMax", num(3), 0}},
                                                    {{"WriteMax", num(1), 1}},
                                                    {{"ReadMax", unit(), 2}}});
  verify::MaxRegisterSpec spec;
  auto res = check(scenario, 3, spec, "maxreg", /*max_depth=*/24, /*max_nodes=*/400000);
  ASSERT_TRUE(res.decided) << "search budget exhausted";
  EXPECT_FALSE(res.strongly_linearizable);
  EXPECT_GE(res.witness_node, 0);
}

TEST(StrongLinNegative, CollectMaxRegisterRefuted) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<core::CollectMaxRegister>(w, "maxreg", n);
  };
  // Readers collecting lane-by-lane while writers land: the reader's return
  // value depends on the future relative to its first collect read.
  auto scenario = testing::fixed_scenario(
      factory, {{{"WriteMax", num(2), 0}},
                {{"WriteMax", num(1), 1}},
                {{"ReadMax", unit(), 2}, {"ReadMax", unit(), 2}}});
  verify::MaxRegisterSpec spec;
  auto res = check(scenario, 3, spec, "maxreg", /*max_depth=*/24, /*max_nodes=*/800000);
  ASSERT_TRUE(res.decided) << "search budget exhausted";
  EXPECT_FALSE(res.strongly_linearizable)
      << "collect-based max register must NOT be strongly linearizable "
         "(Denysyuk-Woelfel impossibility)";
}

}  // namespace
}  // namespace c2sl
