// Bounded model checks of STRONG linearizability for the paper's positive
// results: Theorems 1 (max register), 2 (snapshot), 5 (readable test&set),
// 6 (multi-shot test&set), 9 (fetch&increment) and 10 (set), plus the
// CAS-based comparison structures and the bounded register-based max register.
//
// Each check explores the FULL execution tree of a small scenario and asks the
// checker for a prefix-closed linearization function. A positive verdict here
// is exact for the explored tree; the negative-side soundness (used in
// strong_lin_negative_test.cpp) makes the pair of files a meaningful
// experiment, not a tautology.
#include <gtest/gtest.h>

#include "baselines/cas_structures.h"
#include "core/fetch_increment.h"
#include "core/max_register_faa.h"
#include "core/max_register_variants.h"
#include "core/multishot_tas.h"
#include "core/readable_tas.h"
#include "core/simple_type.h"
#include "core/sl_set.h"
#include "core/snapshot_faa.h"
#include "harness.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using verify::Invocation;

verify::StrongLinResult check(const sim::ScenarioFn& scenario, int n,
                              const verify::Spec& spec, const std::string& object,
                              int max_depth = 24, size_t max_nodes = 120000) {
  sim::ExploreOptions opts;
  opts.max_depth = max_depth;
  opts.max_nodes = max_nodes;
  sim::ExecTree tree = sim::explore(n, scenario, opts);
  EXPECT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::StrongLinOptions slopts;
  slopts.object = object;
  return verify::check_strong_linearizability(tree, spec, slopts);
}

TEST(StrongLin, Theorem1_MaxRegisterFAA) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<core::MaxRegisterFAA>(w, "maxreg", n);
  };
  auto scenario = testing::fixed_scenario(
      factory, {{{"WriteMax", num(2), 0}, {"ReadMax", unit(), 0}},
                {{"WriteMax", num(5), 1}},
                {{"ReadMax", unit(), 2}, {"WriteMax", num(1), 2}}});
  verify::MaxRegisterSpec spec;
  auto res = check(scenario, 3, spec, "maxreg");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(StrongLin, Theorem2_SnapshotFAA) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<core::SnapshotFAA>(w, "snap", n);
  };
  auto scenario = testing::fixed_scenario(
      factory, {{{"Update", num(1), 0}, {"Scan", unit(), 0}},
                {{"Update", num(2), 1}, {"Update", num(3), 1}},
                {{"Scan", unit(), 2}}});
  verify::SnapshotSpec spec(3);
  auto res = check(scenario, 3, spec, "snap");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(StrongLin, Theorem5_ReadableTAS) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<core::ReadableTAS>(w, "rtas");
  };
  auto scenario = testing::fixed_scenario(factory, {{{"TAS", unit(), 0}},
                                                    {{"TAS", unit(), 1}},
                                                    {{"Read", unit(), 2},
                                                     {"Read", unit(), 2}}});
  verify::TasSpec spec;
  auto res = check(scenario, 3, spec, "rtas");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// Theorem 6 with atomic base objects (max register + readable TAS array), the
// paper's literal statement.
TEST(StrongLin, Theorem6_MultishotTAS_AtomicBases) {
  struct Bundle : core::ConcurrentObject {
    core::AtomicMaxRegister curr;
    core::AtomicReadableTasArray ts;
    core::MultishotTAS mtas;
    Bundle(sim::World& w)
        : curr(w, "curr"), ts(w, "TS"), mtas("mtas", curr, ts) {}
    std::string object_name() const override { return "mtas"; }
    Val apply(sim::Ctx& c, const Invocation& i) override { return mtas.apply(c, i); }
  };
  auto factory = [](sim::World& w, int) { return std::make_shared<Bundle>(w); };
  auto scenario = testing::fixed_scenario(factory, {{{"TAS", unit(), 0}},
                                                    {{"Reset", unit(), 1}},
                                                    {{"TAS", unit(), 2}}});
  verify::TasSpec spec(/*multi_shot=*/true);
  auto res = check(scenario, 3, spec, "mtas", /*max_depth=*/24, /*max_nodes=*/400000);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// Corollary 7 composition: multi-shot TAS over MaxRegisterFAA + ReadableTasArray
// (test&set + fetch&add only). Two processes to keep the tree tractable —
// every operation is 3+ base steps here.
TEST(StrongLin, Corollary7_MultishotTAS_Implemented) {
  struct Bundle : core::ConcurrentObject {
    core::MaxRegisterFAA curr;
    core::ReadableTasArray ts;
    core::MultishotTAS mtas;
    Bundle(sim::World& w, int n)
        : curr(w, "curr", n), ts(w, "TS"), mtas("mtas", curr, ts) {}
    std::string object_name() const override { return "mtas"; }
    Val apply(sim::Ctx& c, const Invocation& i) override { return mtas.apply(c, i); }
  };
  auto factory = [](sim::World& w, int n) { return std::make_shared<Bundle>(w, n); };
  auto scenario = testing::fixed_scenario(
      factory, {{{"TAS", unit(), 0}, {"Reset", unit(), 0}}, {{"TAS", unit(), 1}}});
  verify::TasSpec spec(/*multi_shot=*/true);
  auto res = check(scenario, 2, spec, "mtas", /*max_depth=*/26, /*max_nodes=*/400000);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(StrongLin, Theorem9_FetchIncrement) {
  struct Bundle : core::ConcurrentObject {
    core::ReadableTasArray ts;
    core::FetchIncrement fai;
    Bundle(sim::World& w) : ts(w, "M"), fai("fai", ts) {}
    std::string object_name() const override { return "fai"; }
    Val apply(sim::Ctx& c, const Invocation& i) override { return fai.apply(c, i); }
  };
  auto factory = [](sim::World& w, int) { return std::make_shared<Bundle>(w); };
  auto scenario = testing::fixed_scenario(
      factory, {{{"FAI", unit(), 0}}, {{"FAI", unit(), 1}}, {{"Read", unit(), 2}}});
  verify::FaiSpec spec;
  auto res = check(scenario, 3, spec, "fai", /*max_depth=*/24, /*max_nodes=*/400000);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(StrongLin, Theorem10_Set) {
  struct Bundle : core::ConcurrentObject {
    core::AtomicReadableTasArray ts;
    core::FetchIncrement fai;
    core::SLSet set;
    Bundle(sim::World& w) : ts(w, "M"), fai("fai", ts), set(w, "set", fai) {}
    std::string object_name() const override { return "set"; }
    Val apply(sim::Ctx& c, const Invocation& i) override { return set.apply(c, i); }
  };
  auto factory = [](sim::World& w, int) { return std::make_shared<Bundle>(w); };
  auto scenario = testing::fixed_scenario(
      factory, {{{"Put", num(7), 0}}, {{"Take", unit(), 1}}});
  verify::SetSpec spec;
  auto res = check(scenario, 2, spec, "set", /*max_depth=*/30, /*max_nodes=*/400000);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// NOTE: the plain AAC tree max register (BoundedRWMaxRegister) FAILS this
// check — see strong_lin_negative_test.cpp, where that finding is recorded.

TEST(StrongLin, CasQueue) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<baselines::CasQueue>(w, "queue");
  };
  auto scenario = testing::fixed_scenario(factory, {{{"Enq", num(1), 0}},
                                                    {{"Enq", num(2), 1}},
                                                    {{"Deq", unit(), 2}}});
  verify::QueueSpec spec;
  auto res = check(scenario, 3, spec, "queue", /*max_depth=*/24, /*max_nodes=*/400000);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(StrongLin, CasStack) {
  auto factory = [](sim::World& w, int) {
    return std::make_shared<baselines::CasStack>(w, "stack");
  };
  auto scenario = testing::fixed_scenario(factory, {{{"Push", num(1), 0}},
                                                    {{"Push", num(2), 1}},
                                                    {{"Pop", unit(), 2}}});
  verify::StackSpec spec;
  auto res = check(scenario, 3, spec, "stack", /*max_depth=*/24, /*max_nodes=*/400000);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// Theorems 3/4: simple type (counter) over the strongly-linearizable snapshot.
TEST(StrongLin, Theorem4_SimpleTypeCounter) {
  static verify::CounterSpec counter_spec;
  auto factory = [](sim::World& w, int n) {
    return std::shared_ptr<core::ConcurrentObject>(
        core::make_counter(w, "ctr", n, counter_spec));
  };
  auto scenario = testing::fixed_scenario(
      factory, {{{"Inc", unit(), 0}}, {{"Read", unit(), 1}}});
  auto res = check(scenario, 2, counter_spec, "ctr", /*max_depth=*/24,
                   /*max_nodes=*/400000);
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

}  // namespace
}  // namespace c2sl
