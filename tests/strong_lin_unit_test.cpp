// Unit tests for the strong-linearizability model checker itself, on
// hand-crafted execution trees with known verdicts — independent of any real
// implementation, so checker bugs cannot hide behind implementation bugs.
#include "verify/strong_lin.h"

#include <gtest/gtest.h>

#include "verify/specs.h"

namespace c2sl {
namespace {

using sim::Event;
using sim::ExecNode;
using sim::ExecTree;

Event inv(sim::ProcId p, sim::OpId op, uint64_t seq, std::string name, Val args) {
  return Event{Event::Kind::kInvoke, p, op, seq, "obj", std::move(name), std::move(args)};
}

Event resp(sim::ProcId p, sim::OpId op, uint64_t seq, Val r) {
  return Event{Event::Kind::kRespond, p, op, seq, "", "", std::move(r)};
}

int add_node(ExecTree& tree, int parent, std::vector<Event> suffix) {
  ExecNode node;
  node.id = static_cast<int>(tree.nodes.size());
  node.parent = parent;
  node.suffix = std::move(suffix);
  node.depth = parent == -1 ? 0 : tree.nodes[static_cast<size_t>(parent)].depth + 1;
  int id = node.id;
  if (parent != -1) tree.nodes[static_cast<size_t>(parent)].children.push_back(id);
  tree.nodes.push_back(std::move(node));
  return id;
}

TEST(StrongLinChecker, SingletonTreeWithValidHistory) {
  ExecTree tree;
  add_node(tree, -1,
           {inv(0, 0, 0, "WriteMax", num(3)), resp(0, 0, 1, unit()),
            inv(0, 1, 2, "ReadMax", unit()), resp(0, 1, 3, num(3))});
  verify::MaxRegisterSpec spec;
  auto res = verify::check_strong_linearizability(tree, spec);
  EXPECT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable);
}

TEST(StrongLinChecker, SingletonTreeWithInvalidHistory) {
  // ReadMax returns a value never written: not even linearizable.
  ExecTree tree;
  add_node(tree, -1,
           {inv(0, 0, 0, "ReadMax", unit()), resp(0, 0, 1, num(9))});
  verify::MaxRegisterSpec spec;
  auto res = verify::check_strong_linearizability(tree, spec);
  EXPECT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable);
}

// The canonical prefix-closure conflict: at the root a pending WriteMax(5) and
// a complete ReadMax->5 FORCE the pending write into L(root); one child then
// completes the write normally (consistent), but a sibling completes a
// DIFFERENT future: a second read returning 0 before the write lands is
// impossible... we build it directly with queue semantics instead:
// root: Enq(1) pending, Enq(2) complete.
//   child A: Deq -> 1  (forces Enq(1) before Enq(2))
//   child B: Deq -> 2  (forces Enq(2) first, with Enq(1) not before it)
// L(root) must contain Enq(2); extending into A needs Enq(1) BEFORE Enq(2),
// so L(root) itself must already be [Enq(1), Enq(2)] (prefix property), which
// kills child B. No prefix-closed assignment exists.
TEST(StrongLinChecker, DetectsPrefixClosureConflict) {
  ExecTree tree;
  int root = add_node(tree, -1,
                      {inv(0, 0, 0, "Enq", num(1)),                    // pending
                       inv(1, 1, 1, "Enq", num(2)), resp(1, 1, 2, str("OK"))});
  add_node(tree, root,
           {resp(0, 0, 3, str("OK")),  // Enq(1) completes
            inv(2, 2, 4, "Deq", unit()), resp(2, 2, 5, num(1))});
  add_node(tree, root,
           {inv(2, 2, 3, "Deq", unit()), resp(2, 2, 4, num(2)),
            resp(0, 0, 5, str("OK"))});
  verify::QueueSpec spec;
  auto res = verify::check_strong_linearizability(tree, spec);
  EXPECT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable);
  EXPECT_GE(res.witness_node, 0);
}

// The same shape WITHOUT the real-time forcing is fine: if Enq(2) is still
// pending at the root too, L(root) can be empty and each child picks its own
// order.
TEST(StrongLinChecker, NoConflictWhenBothPending) {
  ExecTree tree;
  int root = add_node(tree, -1,
                      {inv(0, 0, 0, "Enq", num(1)), inv(1, 1, 1, "Enq", num(2))});
  add_node(tree, root,
           {resp(0, 0, 2, str("OK")), resp(1, 1, 3, str("OK")),
            inv(2, 2, 4, "Deq", unit()), resp(2, 2, 5, num(1))});
  add_node(tree, root,
           {resp(1, 1, 2, str("OK")), resp(0, 0, 3, str("OK")),
            inv(2, 2, 4, "Deq", unit()), resp(2, 2, 5, num(2))});
  verify::QueueSpec spec;
  auto res = verify::check_strong_linearizability(tree, spec);
  EXPECT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// A chain (no branching) is strongly linearizable iff every prefix is
// linearizable — prefix-closure along one path.
TEST(StrongLinChecker, ChainRequiresMonotoneLinearizations) {
  ExecTree tree;
  int root = add_node(tree, -1, {inv(0, 0, 0, "TAS", unit())});
  int mid = add_node(tree, root, {resp(0, 0, 1, num(0))});
  add_node(tree, mid, {inv(1, 1, 2, "TAS", unit()), resp(1, 1, 3, num(1))});
  verify::TasSpec spec;
  auto res = verify::check_strong_linearizability(tree, spec);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;

  // Two winners along the chain: invalid at the leaf.
  ExecTree bad;
  int broot = add_node(bad, -1, {inv(0, 0, 0, "TAS", unit()), resp(0, 0, 1, num(0))});
  add_node(bad, broot, {inv(1, 1, 2, "TAS", unit()), resp(1, 1, 3, num(0))});
  auto res2 = verify::check_strong_linearizability(bad, spec);
  EXPECT_FALSE(res2.strongly_linearizable);
}

// Object filtering: foreign-object operations in the history are ignored.
TEST(StrongLinChecker, ObjectFilter) {
  ExecTree tree;
  std::vector<Event> events = {inv(0, 0, 0, "ReadMax", unit()), resp(0, 0, 1, num(0))};
  Event foreign = inv(1, 1, 2, "Deq", unit());
  foreign.object = "other";
  events.push_back(foreign);
  add_node(tree, -1, events);
  verify::MaxRegisterSpec spec;
  verify::StrongLinOptions opts;
  opts.object = "obj";
  auto res = verify::check_strong_linearizability(tree, spec, opts);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// Budget exhaustion is reported as undecided, never as a verdict.
TEST(StrongLinChecker, BudgetUndecided) {
  ExecTree tree;
  int root = add_node(tree, -1, {inv(0, 0, 0, "Enq", num(1)), inv(1, 1, 1, "Enq", num(2))});
  add_node(tree, root, {resp(0, 0, 2, str("OK"))});
  verify::QueueSpec spec;
  verify::StrongLinOptions opts;
  opts.max_search_nodes = 1;
  auto res = verify::check_strong_linearizability(tree, spec, opts);
  EXPECT_FALSE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable);
}

}  // namespace
}  // namespace c2sl
