// §4 constructions: readable test&set (Thm 5), readable multi-shot test&set
// (Thm 6 + Corollaries 7/8), readable fetch&increment (Thm 9) and the set
// (Thm 10 / Algorithm 2). Sequential semantics, random-schedule linearizability
// sweeps over all backend compositions, progress properties, and crash runs.
#include <gtest/gtest.h>

#include "core/fetch_increment.h"
#include "core/max_register_faa.h"
#include "core/max_register_variants.h"
#include "core/multishot_tas.h"
#include "core/readable_tas.h"
#include "core/sl_set.h"
#include "harness.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

using testing::ObjectFactory;
using testing::OpGen;
using testing::WorkloadOptions;
using verify::Invocation;

// ------------------------------------------------------------- readable TAS

TEST(ReadableTAS, SequentialSemantics) {
  sim::World world;
  core::ReadableTAS t(world, "t");
  sim::Ctx solo;
  solo.world = &world;
  EXPECT_EQ(t.read(solo), 0);
  EXPECT_EQ(t.test_and_set(solo), 0);
  EXPECT_EQ(t.read(solo), 1);
  EXPECT_EQ(t.test_and_set(solo), 1);
  EXPECT_EQ(t.read(solo), 1);
}

TEST(ReadableTAS, LinearizableUnderRandomSchedules) {
  verify::TasSpec spec;
  ObjectFactory factory = [](sim::World& w, int) {
    return std::make_shared<core::ReadableTAS>(w, "rtas");
  };
  OpGen gen = [](int, int, Rng& rng) {
    return rng.next_bool(0.5) ? Invocation{"TAS", unit(), -1}
                              : Invocation{"Read", unit(), -1};
  };
  for (int n : {2, 3, 5}) {
    WorkloadOptions opts;
    opts.n = n;
    opts.ops_per_proc = 3;
    EXPECT_TRUE(testing::lin_sweep(factory, gen, spec, opts, 40, "rtas")) << n;
  }
}

TEST(ReadableTAS, ExactlyOneWinnerEvenWithCrashes) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    sim::SimRun run(4);
    auto obj = std::make_shared<core::ReadableTAS>(run.world, "t");
    std::vector<int64_t> results(4, -1);
    for (int p = 0; p < 4; ++p) {
      run.sched.spawn(p, [obj, &results](sim::Ctx& ctx) {
        results[static_cast<size_t>(ctx.self)] = obj->test_and_set(ctx);
      });
    }
    sim::RandomStrategy strategy(seed, /*crash_prob=*/0.05, /*max_crashes=*/2);
    run.sched.run(strategy, 1000);
    EXPECT_LE(std::count(results.begin(), results.end(), 0), 1) << "seed " << seed;
  }
}

// ---------------------------------------------------------- multi-shot TAS

/// All Theorem 6 backend compositions under one factory.
enum class MtasBackend { kAtomicBases, kCor7FaaMax, kCollectMax };

ObjectFactory mtas_factory(MtasBackend backend) {
  return [backend](sim::World& w, int n) -> std::shared_ptr<core::ConcurrentObject> {
    struct Bundle : core::ConcurrentObject {
      std::unique_ptr<core::MaxRegisterIface> curr_owner;
      std::unique_ptr<core::ReadableTasArrayIface> ts_owner;
      std::unique_ptr<core::MultishotTAS> mtas;
      std::string object_name() const override { return "mtas"; }
      Val apply(sim::Ctx& c, const Invocation& i) override { return mtas->apply(c, i); }
    };
    auto b = std::make_shared<Bundle>();
    switch (backend) {
      case MtasBackend::kAtomicBases:
        b->curr_owner = std::make_unique<core::AtomicMaxRegister>(w, "curr");
        b->ts_owner = std::make_unique<core::AtomicReadableTasArray>(w, "TS");
        break;
      case MtasBackend::kCor7FaaMax:
        b->curr_owner = std::make_unique<core::MaxRegisterFAA>(w, "curr", n);
        b->ts_owner = std::make_unique<core::ReadableTasArray>(w, "TS");
        break;
      case MtasBackend::kCollectMax:
        b->curr_owner = std::make_unique<core::CollectMaxRegister>(w, "curr", n);
        b->ts_owner = std::make_unique<core::ReadableTasArray>(w, "TS");
        break;
    }
    b->mtas = std::make_unique<core::MultishotTAS>("mtas", *b->curr_owner, *b->ts_owner);
    return b;
  };
}

TEST(MultishotTAS, SequentialSemantics) {
  sim::World world;
  core::AtomicMaxRegister curr(world, "curr");
  core::AtomicReadableTasArray ts(world, "TS");
  core::MultishotTAS t("t", curr, ts);
  sim::Ctx solo;
  solo.world = &world;
  solo.self = 0;
  EXPECT_EQ(t.read(solo), 0);
  EXPECT_EQ(t.test_and_set(solo), 0);
  EXPECT_EQ(t.read(solo), 1);
  t.reset(solo);
  EXPECT_EQ(t.read(solo), 0);
  EXPECT_EQ(t.test_and_set(solo), 0);  // winnable again after reset
  t.reset(solo);
  t.reset(solo);  // reset of an already-0 object is a no-op
  EXPECT_EQ(t.read(solo), 0);
}

class MultishotTASBackends : public ::testing::TestWithParam<MtasBackend> {};

TEST_P(MultishotTASBackends, LinearizableUnderRandomSchedules) {
  verify::TasSpec spec(/*multi_shot=*/true);
  OpGen gen = [](int, int, Rng& rng) {
    uint64_t r = rng.next_below(10);
    if (r < 4) return Invocation{"TAS", unit(), -1};
    if (r < 7) return Invocation{"Read", unit(), -1};
    return Invocation{"Reset", unit(), -1};
  };
  WorkloadOptions opts;
  opts.n = 3;
  opts.ops_per_proc = 3;
  EXPECT_TRUE(
      testing::lin_sweep(mtas_factory(GetParam()), gen, spec, opts, 40, "mtas"));
}

INSTANTIATE_TEST_SUITE_P(Backends, MultishotTASBackends,
                         ::testing::Values(MtasBackend::kAtomicBases,
                                           MtasBackend::kCor7FaaMax,
                                           MtasBackend::kCollectMax));

// ---------------------------------------------------------- fetch&increment

struct FaiBundle : core::ConcurrentObject {
  core::ReadableTasArray ts;
  core::FetchIncrement fai;
  FaiBundle(sim::World& w, bool one_shot = false)
      : ts(w, "M"), fai("fai", ts, one_shot) {}
  std::string object_name() const override { return "fai"; }
  Val apply(sim::Ctx& c, const Invocation& i) override { return fai.apply(c, i); }
};

TEST(FetchIncrement, SequentialSemantics) {
  sim::World world;
  FaiBundle b(world);
  sim::Ctx solo;
  solo.world = &world;
  EXPECT_EQ(b.fai.read(solo), 0);
  EXPECT_EQ(b.fai.fetch_and_increment(solo), 0);
  EXPECT_EQ(b.fai.fetch_and_increment(solo), 1);
  EXPECT_EQ(b.fai.read(solo), 2);
  EXPECT_EQ(b.fai.fetch_and_increment(solo), 2);
}

TEST(FetchIncrement, LinearizableUnderRandomSchedules) {
  verify::FaiSpec spec;
  ObjectFactory factory = [](sim::World& w, int) {
    return std::make_shared<FaiBundle>(w);
  };
  OpGen gen = [](int, int, Rng& rng) {
    return rng.next_bool(0.6) ? Invocation{"FAI", unit(), -1}
                              : Invocation{"Read", unit(), -1};
  };
  for (int n : {2, 3, 4}) {
    WorkloadOptions opts;
    opts.n = n;
    opts.ops_per_proc = 3;
    EXPECT_TRUE(testing::lin_sweep(factory, gen, spec, opts, 40, "fai")) << n;
  }
}

TEST(FetchIncrement, DistinctValuesAcrossProcesses) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    sim::SimRun run(4);
    auto obj = std::make_shared<FaiBundle>(run.world);
    std::vector<int64_t> got;
    for (int p = 0; p < 4; ++p) {
      run.sched.spawn(p, [obj, &got](sim::Ctx& ctx) {
        for (int j = 0; j < 3; ++j) got.push_back(obj->fai.fetch_and_increment(ctx));
      });
    }
    sim::RandomStrategy strategy(seed);
    run.sched.run(strategy, 100000);
    ASSERT_TRUE(run.sched.all_done());
    std::sort(got.begin(), got.end());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], static_cast<int64_t>(i)) << "seed " << seed;
    }
  }
}

// One-shot restriction (paper §1 re [4,5]): wait-free with a bound of
// 2n steps — each of the <= n array entries costs one test&set plus one state
// write.
TEST(FetchIncrement, OneShotIsWaitFreeBounded) {
  const int n = 5;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    sim::SimRun run(n);
    auto obj = std::make_shared<FaiBundle>(run.world, /*one_shot=*/true);
    std::vector<uint64_t> op_steps(static_cast<size_t>(n), 0);
    for (int p = 0; p < n; ++p) {
      run.sched.spawn(p, [obj, &op_steps](sim::Ctx& ctx) {
        uint64_t before = ctx.steps_taken;
        obj->fai.fetch_and_increment(ctx);
        op_steps[static_cast<size_t>(ctx.self)] = ctx.steps_taken - before;
      });
    }
    sim::RandomStrategy strategy(seed);
    run.sched.run(strategy, 100000);
    ASSERT_TRUE(run.sched.all_done());
    for (uint64_t s : op_steps) EXPECT_LE(s, 2u * n);
  }
}

TEST(FetchIncrement, OneShotRejectsSecondCall) {
  sim::World world;
  FaiBundle b(world, /*one_shot=*/true);
  sim::Ctx solo;
  solo.world = &world;
  b.fai.fetch_and_increment(solo);
  EXPECT_THROW(b.fai.fetch_and_increment(solo), PreconditionError);
}

// Lock-freedom of the multi-shot version: a starved reader makes no progress
// while FAI completions keep invalidating it, but the system completes
// operations (this is exactly why Thm 9 claims lock-freedom, not wait-freedom).
TEST(FetchIncrement, SystemProgressUnderStarvation) {
  sim::SimRun run(3);
  auto obj = std::make_shared<FaiBundle>(run.world);
  int completed_fais = 0;
  run.sched.spawn(0, [obj](sim::Ctx& ctx) { obj->fai.read(ctx); });
  for (int p = 1; p < 3; ++p) {
    run.sched.spawn(p, [obj, &completed_fais](sim::Ctx& ctx) {
      for (int j = 0; j < 10; ++j) {
        obj->fai.fetch_and_increment(ctx);
        ++completed_fais;
      }
    });
  }
  sim::StarveStrategy starve(/*victim=*/0, /*seed=*/13);
  run.sched.run(starve, 100000);
  EXPECT_EQ(completed_fais, 20);  // system-wide progress despite the starved read
  EXPECT_TRUE(run.sched.all_done());
}

// -------------------------------------------------------------------- set

struct SetBundle : core::ConcurrentObject {
  core::ReadableTasArray fai_ts;
  core::FetchIncrement fai;
  core::SLSet set;
  SetBundle(sim::World& w) : fai_ts(w, "MaxM"), fai("Max", fai_ts), set(w, "set", fai) {}
  std::string object_name() const override { return "set"; }
  Val apply(sim::Ctx& c, const Invocation& i) override { return set.apply(c, i); }
};

TEST(SLSet, SequentialSemantics) {
  sim::World world;
  SetBundle b(world);
  sim::Ctx solo;
  solo.world = &world;
  EXPECT_EQ(b.set.take(solo), str("EMPTY"));
  EXPECT_EQ(b.set.put(solo, 7), str("OK"));
  EXPECT_EQ(b.set.put(solo, 9), str("OK"));
  Val first = b.set.take(solo);
  Val second = b.set.take(solo);
  std::vector<int64_t> taken = {as_num(first), as_num(second)};
  std::sort(taken.begin(), taken.end());
  EXPECT_EQ(taken, (std::vector<int64_t>{7, 9}));
  EXPECT_EQ(b.set.take(solo), str("EMPTY"));
}

TEST(SLSet, LinearizableUnderRandomSchedules) {
  verify::SetSpec spec;
  ObjectFactory factory = [](sim::World& w, int) {
    return std::make_shared<SetBundle>(w);
  };
  // Unique items per (proc, index): the paper assumes distinct put inputs.
  OpGen gen = [](int proc, int j, Rng& rng) {
    if (rng.next_bool(0.55)) {
      return Invocation{"Put", num(proc * 100 + j), -1};
    }
    return Invocation{"Take", unit(), -1};
  };
  for (int n : {2, 3}) {
    WorkloadOptions opts;
    opts.n = n;
    opts.ops_per_proc = 3;
    EXPECT_TRUE(testing::lin_sweep(factory, gen, spec, opts, 40, "set")) << n;
  }
}

TEST(SLSet, NoItemTakenTwiceAndNoItemLost) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    sim::SimRun run(4);
    auto obj = std::make_shared<SetBundle>(run.world);
    std::vector<int64_t> taken;
    int empties = 0;
    for (int p = 0; p < 4; ++p) {
      run.sched.spawn(p, [obj, p, &taken, &empties](sim::Ctx& ctx) {
        for (int j = 0; j < 2; ++j) obj->set.put(ctx, p * 10 + j);
        for (int j = 0; j < 2; ++j) {
          Val v = obj->set.take(ctx);
          if (std::holds_alternative<int64_t>(v)) {
            taken.push_back(as_num(v));
          } else {
            ++empties;
          }
        }
      });
    }
    sim::RandomStrategy strategy(seed);
    run.sched.run(strategy, 200000);
    ASSERT_TRUE(run.sched.all_done()) << "seed " << seed;
    std::sort(taken.begin(), taken.end());
    EXPECT_TRUE(std::adjacent_find(taken.begin(), taken.end()) == taken.end())
        << "item taken twice, seed " << seed;
    EXPECT_EQ(taken.size() + static_cast<size_t>(empties), 8u);
  }
}

TEST(SLSet, PutIsWaitFreeBoundedSteps) {
  // Put = one fetch&increment (lock-free in general, but bounded here by the
  // number of puts) + one write. With k puts total, FAI costs <= 2k steps.
  sim::SimRun run(3);
  auto obj = std::make_shared<SetBundle>(run.world);
  std::vector<uint64_t> put_steps;
  for (int p = 0; p < 3; ++p) {
    run.sched.spawn(p, [obj, p, &put_steps](sim::Ctx& ctx) {
      for (int j = 0; j < 3; ++j) {
        uint64_t before = ctx.steps_taken;
        obj->set.put(ctx, p * 10 + j);
        put_steps.push_back(ctx.steps_taken - before);
      }
    });
  }
  sim::RandomStrategy strategy(3);
  run.sched.run(strategy, 100000);
  ASSERT_TRUE(run.sched.all_done());
  for (uint64_t s : put_steps) EXPECT_LE(s, 2u * 9 + 1);
}

}  // namespace
}  // namespace c2sl
