// Structural proof that the DISABLED telemetry flavour is zero-overhead.
//
// This TU is compiled with C2SL_TELEMETRY=0 forced by CMake (the only target
// in the build with the off flavour when the tree is configured ON), and it
// includes ONLY telemetry headers — never the service layer, whose library
// objects carry the build-wide flavour. That is ODR-safe by construction: the
// two flavours live in distinct inline namespaces (tel_on / tel_off), so the
// mangled names differ even when both appear in one link.
//
// The proof idea: atomic operations (and clock reads, and thread_local
// access) are not usable in constant evaluation. If the entire instrumented
// hot path — prim macros, counter bumps, flight recording, OpScope
// construction, digest reads — can run inside a constexpr function whose
// result feeds a static_assert, then the disabled flavour provably contains
// no atomic op, no RMW, no syscall: the compiler would have rejected the
// static_assert otherwise. This is the "C2SL_TELEMETRY=0 adds zero atomic
// ops" guarantee as a compile-time theorem rather than a benchmark claim
// (the runtime half — the <= 3% ON-overhead gate — lives in CI's ablation
// job; see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <type_traits>

#include "telemetry/export.h"
#include "telemetry/histogram.h"
#include "telemetry/prim_profile.h"
#include "telemetry/telemetry.h"

static_assert(C2SL_TELEMETRY == 0,
              "telemetry_off_test must be compiled with C2SL_TELEMETRY=0 "
              "(CMake forces it per-target)");

namespace c2sl {
namespace {

static_assert(!tel::kEnabled);

// Every stateful telemetry type collapses to an empty shell when disabled.
static_assert(std::is_empty_v<tel::LaneTelemetry>);
static_assert(std::is_empty_v<tel::StoreTelemetry>);
static_assert(std::is_empty_v<tel::FlightRecorder>);
static_assert(std::is_empty_v<tel::LatencyHistogram>);
static_assert(std::is_empty_v<tel::OpScope>);
static_assert(std::is_empty_v<tel::OpenTimer>);

// The whole instrumented hot path, in constant evaluation. Any atomic
// operation, clock read, or thread_local access anywhere below would make
// this function non-constexpr-evaluable and fail the static_assert.
constexpr bool off_hot_path_is_constant_evaluable() {
  // The primitive-op macros at every runtime RMW site.
  C2SL_TEL_PRIM_FAA();
  C2SL_TEL_PRIM_TAS();
  C2SL_TEL_PRIM_SWAP();
  C2SL_TEL_EVENT(tel::TelEvent::kSegmentClaim);
  tel::PrimCounts before = tel::this_thread_prims();  // by-value when off
  tel::PrimCounts delta = tel::this_thread_prims() - before;

  // The per-op instrumentation C2Store's refs run.
  tel::StoreTelemetry store;
  tel::LaneTelemetry* lane = store.lane(0);
  {
    tel::OpScope op(store, lane, tel::TelOp::kMaxWrite, /*shard=*/0, /*arg=*/7);
  }
  store.bump_ops_total();
  tel::LaneTelemetry lt;
  lt.bump(tel::TelOp::kCounterInc);
  tel::FlightRecorder flight;
  flight.record(tel::TelOp::kSetPut, 1, 42);
  tel::LatencyHistogram hist;
  hist.record(123);

  // The session-open path.
  tel::OpenTimer timer;
  store.record_open_wait(lane, timer.elapsed_ns());

  return delta.faa == 0 && delta.tas == 0 && delta.swap == 0 &&
         store.ops_total() == 0 && store.ops_total_scan(8) == 0 &&
         tel::event_count(tel::TelEvent::kShardInit) == 0 &&
         store.peek_lane(0) == nullptr && timer.elapsed_ns() == 0;
}

static_assert(off_hot_path_is_constant_evaluable(),
              "the disabled telemetry flavour executed a non-constexpr "
              "operation: an atomic, clock read, or thread_local leaked into "
              "the off hot path");

// Runtime face of the same guarantee: snapshots and exporters still work (a
// disabled build exports a well-formed document saying so), so callers never
// need their own #if around metrics plumbing.
TEST(TelemetryOff, SnapshotAndExportersReportDisabled) {
  tel::StoreTelemetry store;
  tel::MetricsSnapshot m = store.snapshot(8);
  EXPECT_FALSE(m.enabled);
  EXPECT_EQ(m.ops_total, 0);
  EXPECT_EQ(m.ops_total_scan, 0u);
  EXPECT_EQ(m.lanes, 0);
  std::string json = tel::to_json(m, "telemetry_off_test");
  EXPECT_NE(json.find("\"schema\":\"c2sl-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"telemetry_enabled\":false"), std::string::npos);
  std::string prom = tel::to_prometheus(m);
  EXPECT_NE(prom.find("c2sl_telemetry_enabled 0"), std::string::npos);
}

// The histogram math (plain data, flavour-independent) stays available for
// the workload engine's exact-percentile path even when telemetry is off.
TEST(TelemetryOff, SharedQuantileRuleStillAvailable) {
  EXPECT_EQ(tel::nearest_rank_index(4, 0.50), 1u);
  EXPECT_EQ(tel::nearest_rank_index(100, 0.99), 98u);
  EXPECT_EQ(tel::hist_bucket_of(1024), 11);
}

}  // namespace
}  // namespace c2sl
