// The telemetry layer's verification story, in three acts:
//
//  1. CHECKER (sim twin, svc::SimTelemetryCounter): the ops-total digest —
//     lane-local plain-register cells plus one shared FAA word — serves reads
//     as a single FAA(0) and IS strongly linearizable on the full execution
//     tree; the naive one-pass lane-cell scan read is REFUTED (pinned negative
//     control). This is the §3.2 pack-into-one-FAA-word argument applied to
//     the telemetry facet itself: the one metric an adaptive test oracle may
//     branch on (ops_total) must not be gameable by the scheduler.
//
//  2. NATIVE exactness: on a live C2Store, op-kind counters and the digest
//     count every instrumented op exactly (single-threaded), the flight
//     recorder retains the last-N ops in order, open-session waits land in the
//     open_wait histogram, and the exporters emit well-formed c2sl-metrics-v1
//     JSON / Prometheus text.
//
//  3. HISTOGRAM unit vectors: the hoisted nearest-rank rule (shared with
//     wl::summarize_latencies since PR 4 pinned it) and the log-bucket
//     geometry, on small known vectors.
//
// A small multi-threaded stress rides along so the TSAN job exercises the
// racy snapshot reads against concurrent lane writers.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "harness.h"
#include "service/c2store.h"
#include "service/sim_bridge.h"
#include "telemetry/export.h"
#include "telemetry/histogram.h"
#include "telemetry/telemetry.h"
#include "verify/lin_checker.h"
#include "verify/specs.h"

namespace c2sl {
namespace {

// --- 1. checker verdicts on the sim twin ------------------------------------

verify::StrongLinResult check(const sim::ScenarioFn& scenario, int n,
                              const verify::Spec& spec, const std::string& object) {
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_nodes = 400000;
  sim::ExecTree tree = sim::explore(n, scenario, opts);
  EXPECT_FALSE(tree.budget_exhausted) << "tree budget too small: " << tree.size();
  verify::StrongLinOptions slopts;
  slopts.object = object;
  return verify::check_strong_linearizability(tree, spec, slopts);
}

TEST(TelemetrySim, DigestReadStronglyLinearizable) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<svc::SimTelemetryCounter>(w, "tops", n,
                                                      /*scan_read=*/false);
  };
  // Two concurrent instrumented ops (lane cell write + digest FAA) and a
  // metrics reader: the reader's FAA(0) is its own fixed linearization point.
  auto scenario = testing::fixed_scenario(
      factory,
      {{{"Inc", unit(), 0}}, {{"Inc", unit(), 1}}, {{"Read", unit(), 2}}});
  verify::CounterSpec spec;
  auto res = check(scenario, 3, spec, "tops");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

TEST(TelemetrySim, DigestIncReadRaceStronglyLinearizable) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<svc::SimTelemetryCounter>(w, "tops", n,
                                                      /*scan_read=*/false);
  };
  // Reader racing back-to-back bumps on one lane: reads must keep their fixed
  // FAA(0) points through the window where the writer sits between its lane
  // cell write and its digest step.
  auto scenario = testing::fixed_scenario(
      factory, {{{"Inc", unit(), 0}, {"Inc", unit(), 0}},
                {{"Read", unit(), 1}, {"Read", unit(), 1}}});
  verify::CounterSpec spec;
  auto res = check(scenario, 2, spec, "tops");
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.strongly_linearizable) << res.report;
}

// PINNED NEGATIVE CONTROL: the same object, read by the naive one-pass scan
// over the lane cells (what StoreTelemetry::ops_total_scan does). Each cell is
// monotone and single-writer, so the scan is linearizable — but a reader that
// already scanned lane 0 as empty cannot commit a return value at any of its
// own steps: whether the completed Inc on lane 0 counts depends on what the
// read finds in lane 1 LATER, so no prefix-closed assignment exists. If this
// verdict ever flips, metrics_snapshot() may as well serve ops_total from the
// scan — the digest word would be dead weight.
TEST(TelemetrySim, LaneScanReadNotStronglyLinearizable) {
  auto factory = [](sim::World& w, int n) {
    return std::make_shared<svc::SimTelemetryCounter>(w, "tops", n,
                                                      /*scan_read=*/true);
  };
  auto scenario = testing::fixed_scenario(
      factory,
      {{{"Inc", unit(), 0}}, {{"Inc", unit(), 1}}, {{"Read", unit(), 2}}});
  verify::CounterSpec spec;
  auto res = check(scenario, 3, spec, "tops");
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.strongly_linearizable)
      << "the one-pass lane scan verified strongly linearizable — the pinned "
         "refutation (the reason ops_total reads the FAA digest) is gone";
}

// --- 2. native exactness ----------------------------------------------------

svc::C2StoreConfig small_config() {
  svc::C2StoreConfig cfg;
  cfg.initial_shards = 4;
  cfg.max_threads = 4;
  cfg.max_value = 15;
  cfg.tas_max_resets = 14;
  return cfg;
}

TEST(TelemetryNative, CountsEveryInstrumentedOpExactly) {
  svc::C2Store store(small_config());
  {
    svc::C2Session s = store.open_session();
    svc::MaxRef mx = s.max(uint64_t{1});
    svc::CounterRef ctr = s.counter(uint64_t{2});
    svc::TasRef tas = s.tas(uint64_t{3});
    svc::SetRef set = s.set(uint64_t{4});
    for (int i = 0; i < 5; ++i) mx.write(i % 15);
    for (int i = 0; i < 4; ++i) mx.read();
    for (int i = 0; i < 3; ++i) ctr.inc();
    for (int i = 0; i < 2; ++i) ctr.read();
    tas.test_and_set();
    tas.read();
    set.put(7);
    set.take();
    s.global_max();
    s.counter_sum();
  }
  tel::MetricsSnapshot m = store.metrics_snapshot();
  ASSERT_TRUE(m.enabled);
  auto count = [&](tel::TelOp op) { return m.op_counts[static_cast<int>(op)]; };
  EXPECT_EQ(count(tel::TelOp::kMaxWrite), 5u);
  EXPECT_EQ(count(tel::TelOp::kMaxRead), 4u);
  EXPECT_EQ(count(tel::TelOp::kCounterInc), 3u);
  EXPECT_EQ(count(tel::TelOp::kCounterRead), 2u);
  EXPECT_EQ(count(tel::TelOp::kTasSet), 1u);
  EXPECT_EQ(count(tel::TelOp::kTasRead), 1u);
  EXPECT_EQ(count(tel::TelOp::kSetPut), 1u);
  EXPECT_EQ(count(tel::TelOp::kSetTake), 1u);
  EXPECT_EQ(count(tel::TelOp::kGlobalMax), 1u);
  EXPECT_EQ(count(tel::TelOp::kCounterSum), 1u);
  EXPECT_EQ(count(tel::TelOp::kSessionOpen), 1u);
  // The digest saw every instrumented op (21 = the sum above); with all
  // sessions closed the racy lane scan has quiesced to the same value.
  EXPECT_EQ(m.ops_total, 21);
  EXPECT_EQ(m.ops_total_scan, 21u);
  // `lanes` counts materialised lane BLOCKS (the segmented spine materialises
  // whole segments), not sessions: at least the one used lane, at most all.
  EXPECT_GE(m.lanes, 1);
  EXPECT_LE(m.lanes, 4);
  // Shard events: 4 distinct keys may collide on <= 4 shards.
  EXPECT_GE(m.events[static_cast<int>(tel::TelEvent::kShardInit)], 1u);
  EXPECT_LE(m.events[static_cast<int>(tel::TelEvent::kShardInit)], 4u);
}

TEST(TelemetryNative, FlightRecorderKeepsLastOpsInOrder) {
  svc::C2Store store(small_config());
  svc::C2Session s = store.open_session();
  svc::MaxRef mx = s.max(uint64_t{1});
  for (int i = 0; i < 10; ++i) mx.write(i % 15);
  const tel::LaneTelemetry* lane = store.telemetry().peek_lane(0);
  ASSERT_NE(lane, nullptr);
  std::vector<tel::FlightEntry> flight = lane->flight.snapshot();
  // session_open + 10 writes recorded on lane 0.
  ASSERT_EQ(flight.size(), 11u);
  EXPECT_EQ(flight.front().op, tel::TelOp::kSessionOpen);
  for (size_t i = 1; i < flight.size(); ++i) {
    EXPECT_EQ(flight[i].op, tel::TelOp::kMaxWrite);
    EXPECT_EQ(flight[i].seq, flight[i - 1].seq + 1) << "ring out of order";
    EXPECT_EQ(flight[i].arg, static_cast<int64_t>((i - 1) % 15));
    EXPECT_GE(flight[i].shard, 0);
  }
  // Overflow: the ring keeps only the newest kEntries.
  for (int i = 0; i < 200; ++i) mx.read();
  flight = lane->flight.snapshot();
  ASSERT_EQ(flight.size(), tel::FlightRecorder::kEntries);
  for (const tel::FlightEntry& e : flight) {
    EXPECT_EQ(e.op, tel::TelOp::kMaxRead);
  }
}

TEST(TelemetryNative, OpenWaitLandsInHistogram) {
  svc::C2Store store(small_config());
  {
    svc::C2Session a = store.open_session();
    svc::C2Session b = store.open_session();
  }
  tel::MetricsSnapshot m = store.metrics_snapshot();
  EXPECT_EQ(m.open_wait.total(), 2u);
  EXPECT_EQ(m.op_counts[static_cast<int>(tel::TelOp::kSessionOpen)], 2u);
  // Uncontended opens wait ~0; the estimate must stay conservative (upper
  // bounds), so it can never be negative.
  EXPECT_GE(m.open_wait.quantile_upper_ns(0.5), 0);
}

TEST(TelemetryNative, ExportersEmitWellFormedDocuments) {
  svc::C2Store store(small_config());
  {
    svc::C2Session s = store.open_session();
    svc::CounterRef ctr = s.counter(uint64_t{9});
    for (int i = 0; i < 40; ++i) ctr.inc();  // > one sample period
  }
  tel::MetricsSnapshot m = store.metrics_snapshot();
  std::string json = tel::to_json(m, "telemetry_test");
  EXPECT_NE(json.find("\"schema\":\"c2sl-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"telemetry_test\""), std::string::npos);
  EXPECT_NE(json.find("\"telemetry_enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"counter_inc\":40"), std::string::npos);
  EXPECT_NE(json.find("\"ops_total\":41"), std::string::npos);  // + open
  EXPECT_NE(json.find("\"session\""), std::string::npos);
  std::string prom = tel::to_prometheus(m);
  EXPECT_NE(prom.find("c2sl_ops_total 41"), std::string::npos);
  EXPECT_NE(prom.find("c2sl_op_count{op=\"counter_inc\"} 40"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE c2sl_ops_total counter"), std::string::npos);
}

// 1-in-kLatencySamplePeriod ops pay the clock; the histogram must hold
// exactly the sampled fraction, not every op.
TEST(TelemetryNative, LatencySamplingIsPeriodic) {
  svc::C2Store store(small_config());
  constexpr int kOps = 32 * 4;  // 4 full sample periods
  {
    svc::C2Session s = store.open_session();
    svc::MaxRef mx = s.max(uint64_t{1});
    for (int i = 0; i < kOps; ++i) mx.read();
  }
  tel::MetricsSnapshot m = store.metrics_snapshot();
  uint64_t sampled =
      m.op_latency[static_cast<int>(tel::TelOp::kMaxRead)].total();
  EXPECT_EQ(sampled, kOps / tel::kLatencySamplePeriod);
}

TEST(TelemetryNative, SnapshotRacesCleanlyWithWriters) {
  svc::C2Store store(small_config());
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      svc::C2Session s = store.open_session();
      svc::CounterRef ctr = s.counter(static_cast<uint64_t>(t));
      for (int i = 0; i < kOps; ++i) ctr.inc();
    });
  }
  // Concurrent snapshot reader: racy by design, must be TSAN-clean and
  // internally consistent (the digest never trails a quiesced scan).
  for (int r = 0; r < 50; ++r) {
    tel::MetricsSnapshot m = store.metrics_snapshot();
    EXPECT_GE(m.ops_total, 0);
  }
  for (std::thread& w : workers) w.join();
  tel::MetricsSnapshot m = store.metrics_snapshot();
  // kOps incs + 1 session_open per thread, exactly.
  EXPECT_EQ(m.ops_total, kThreads * (kOps + 1));
  EXPECT_EQ(m.op_counts[static_cast<int>(tel::TelOp::kCounterInc)],
            static_cast<uint64_t>(kThreads) * kOps);
}

// --- 3. histogram / quantile unit vectors -----------------------------------

TEST(TelemetryHistogram, BucketGeometry) {
  EXPECT_EQ(tel::hist_bucket_of(-5), 0);
  EXPECT_EQ(tel::hist_bucket_of(0), 0);
  EXPECT_EQ(tel::hist_bucket_of(1), 1);
  EXPECT_EQ(tel::hist_bucket_of(2), 2);
  EXPECT_EQ(tel::hist_bucket_of(3), 2);
  EXPECT_EQ(tel::hist_bucket_of(4), 3);
  EXPECT_EQ(tel::hist_bucket_of(1023), 10);
  EXPECT_EQ(tel::hist_bucket_of(1024), 11);
  EXPECT_EQ(tel::hist_bucket_of(INT64_MAX), 63);
  EXPECT_EQ(tel::hist_bucket_upper(0), 0);
  EXPECT_EQ(tel::hist_bucket_upper(1), 1);
  EXPECT_EQ(tel::hist_bucket_upper(2), 3);
  EXPECT_EQ(tel::hist_bucket_upper(10), 1023);
  EXPECT_EQ(tel::hist_bucket_upper(63), INT64_MAX);
  // Every value lands in the bucket whose range contains it.
  for (int64_t v : {1, 2, 3, 7, 8, 1000, 123456789}) {
    int b = tel::hist_bucket_of(v);
    EXPECT_LE(v, tel::hist_bucket_upper(b));
    EXPECT_GT(v, tel::hist_bucket_upper(b - 1));
  }
}

// The PR 4 nearest-rank vectors, via the hoisted shared index rule — the same
// expectations Latency.NearestRankRuleOnSmallKnownVectors pins through
// summarize_latencies. If the two drift apart, the bench JSON and the metrics
// JSON no longer report the same statistic.
TEST(TelemetryHistogram, NearestRankIndexPinnedVectors) {
  EXPECT_EQ(tel::nearest_rank_index(4, 0.50), 1u);   // lower middle sample
  EXPECT_EQ(tel::nearest_rank_index(4, 0.90), 3u);
  EXPECT_EQ(tel::nearest_rank_index(4, 0.99), 3u);
  EXPECT_EQ(tel::nearest_rank_index(1, 0.50), 0u);
  EXPECT_EQ(tel::nearest_rank_index(1, 0.999), 0u);
  EXPECT_EQ(tel::nearest_rank_index(100, 0.50), 49u);
  EXPECT_EQ(tel::nearest_rank_index(100, 0.99), 98u);  // 99th, not max
  EXPECT_EQ(tel::nearest_rank_index(100, 0.999), 99u);
  EXPECT_EQ(tel::nearest_rank_index(1000, 0.50), 499u);
  EXPECT_EQ(tel::nearest_rank_index(1000, 0.999), 998u);
  EXPECT_EQ(tel::nearest_rank_index(10, 0.90), 8u);  // 9th order statistic
  EXPECT_EQ(tel::nearest_rank_index(0, 0.50), 0u);   // empty guard
}

TEST(TelemetryHistogram, QuantileUpperBoundsOnKnownCounts) {
  tel::HistogramSnapshot h;
  // 4 samples of 10ns (bucket 4: [8,16)), 4 of 100ns (bucket 7: [64,128)),
  // 2 of 1000ns (bucket 10: [512,1024)).
  h.counts[tel::hist_bucket_of(10)] = 4;
  h.counts[tel::hist_bucket_of(100)] = 4;
  h.counts[tel::hist_bucket_of(1000)] = 2;
  EXPECT_EQ(h.total(), 10u);
  // Nearest rank over counts: rank 5 (p50) falls in the 100ns bucket, rank 9
  // (p90) in the 1000ns bucket; estimates report inclusive bucket uppers.
  EXPECT_EQ(h.quantile_upper_ns(0.50), 127);
  EXPECT_EQ(h.quantile_upper_ns(0.90), 1023);
  EXPECT_EQ(h.quantile_upper_ns(0.99), 1023);
  EXPECT_EQ(h.max_upper_ns(), 1023);
  // Conservative: the estimate never under-reports the true sample.
  EXPECT_GE(h.quantile_upper_ns(0.50), 100);
  tel::HistogramSnapshot empty;
  EXPECT_EQ(empty.quantile_upper_ns(0.5), 0);
  EXPECT_EQ(empty.max_upper_ns(), 0);
}

TEST(TelemetryHistogram, LiveRecordMatchesBucketRule) {
  tel::LatencyHistogram h;
  h.record(10);
  h.record(100);
  h.record(0);
  tel::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.counts[tel::hist_bucket_of(10)], 1u);
  EXPECT_EQ(s.counts[tel::hist_bucket_of(100)], 1u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.total(), 3u);
}

}  // namespace
}  // namespace c2sl
