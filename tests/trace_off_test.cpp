// Structural proof that the DISABLED trace flavour is zero-overhead.
//
// This TU is compiled with C2SL_TRACE=0 forced by CMake (the only target in
// the build with the off flavour when the tree is configured ON), and it
// includes ONLY telemetry headers — never the service layer, whose library
// objects carry the build-wide flavour. That is ODR-safe by construction:
// the two flavours live in distinct inline namespaces (trace_on /
// trace_off), so the mangled names differ even when both appear in one link.
//
// Same proof idea as telemetry_off_test.cpp: atomics, clock reads (rdtsc
// included — a builtin call is not a constant expression), and heap
// allocation are unusable in constant evaluation, so if the entire capture
// path — scope construction, the witness/result setters, point events, the
// lane accessors — runs inside a constexpr function feeding a static_assert,
// the disabled flavour provably contains none of them. The runtime half of
// the guarantee (trace-ON overhead <= 5% on mix/mixed) is CI's
// trace-ablation gate; see .github/workflows/ci.yml.
#include <gtest/gtest.h>

#include <string>
#include <type_traits>

#include "telemetry/trace.h"
#include "telemetry/trace_export.h"

static_assert(C2SL_TRACE == 0,
              "trace_off_test must be compiled with C2SL_TRACE=0 "
              "(CMake forces it per-target)");

namespace c2sl {
namespace {

static_assert(!tel::kTraceEnabled);

// Every stateful capture type collapses to an empty shell when disabled. The
// record and dump structs stay REAL plain data in both flavours (exporters
// and tools never need #if), so they are deliberately absent here.
static_assert(std::is_empty_v<tel::LaneTrace>);
static_assert(std::is_empty_v<tel::StoreTrace>);
static_assert(std::is_empty_v<tel::TraceScope>);
static_assert(tel::LaneTrace::kCap == 0);

// The whole capture hot path, in constant evaluation. Any rdtsc, atomic, or
// segment allocation below would fail the static_assert at compile time.
constexpr bool off_hot_path_is_constant_evaluable() {
  tel::StoreTrace trace;
  tel::LaneTrace* lane = trace.lane(0);
  {
    // An interval op exactly as the C2Store refs stage one.
    tel::TraceScope tr(lane, tel::TraceOp::kCounterInc, /*key=*/3, /*arg=*/1);
    tr.set_result(0);
    tr.set_witness(17);
    tr.set_key_b(2);
    tr.set_epoch(1);
  }
  // A lifecycle point event exactly as open/close/resize record one.
  trace.record_event(lane, tel::TraceOp::kSessionOpen, -1, 0, 0, -1, -1);

  tel::LaneTrace standalone;
  standalone.flush();  // the writer-side flush is part of the hot-path API
  return tel::trace_now() == 0 && trace.lane(7) == nullptr &&
         trace.peek_lane(0) == nullptr && standalone.begin_append() == nullptr &&
         standalone.published() == 0 && standalone.dropped() == 0;
}

static_assert(off_hot_path_is_constant_evaluable(),
              "the disabled trace flavour executed a non-constexpr "
              "operation: an rdtsc, atomic, or allocation leaked into the "
              "off hot path");

// Runtime face of the same guarantee: the drain and both exporters still
// work — a disabled build exports a well-formed document saying so, and the
// offline auditor treats trace_enabled=false as vacuously valid.
TEST(TraceOff, DumpAndExportersReportDisabled) {
  tel::StoreTrace trace;
  tel::TraceDump d = trace.dump(/*max_lanes=*/8, /*initial_shards=*/16);
  EXPECT_FALSE(d.enabled);
  EXPECT_TRUE(d.lanes.empty());
  std::string json = tel::trace_to_json(d, "trace_off_test");
  EXPECT_NE(json.find("\"schema\":\"c2sl-trace-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_enabled\":false"), std::string::npos);
  EXPECT_NE(json.find("\"records_total\":0"), std::string::npos);
  std::string chrome = tel::trace_to_chrome(d, "trace_off_test");
  EXPECT_NE(chrome.find("\"traceEvents\":[]"), std::string::npos);
}

// The record struct keeps its one-cache-line layout in both flavours: a
// trace file written by an ON build parses against the same struct shape
// tools compiled OFF would assume.
TEST(TraceOff, RecordLayoutIsFlavourIndependent) {
  static_assert(sizeof(tel::TraceRecord) == 64);
  static_assert(std::is_trivially_copyable_v<tel::TraceRecord>);
  tel::TraceRecord r;
  EXPECT_EQ(r.witness, -1);
}

}  // namespace
}  // namespace c2sl
