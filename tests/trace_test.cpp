// Linearization-witness tracing, native verification (tools/trace_audit.py
// carries the offline order proofs; this suite pins the CAPTURE layer):
//
//  1. RECORD LAYOUT: one record is one 64-byte cache line, and a committed
//     record carries exactly what its TraceScope setters staged.
//  2. OVERFLOW accounting: past LaneTrace::kCap appends never block and never
//     tear — each is counted in `dropped`, published stays pinned at the cap,
//     and the drain reports both (the auditor refuses lossy traces, so a
//     dropped record can never silently pass an audit).
//  3. DRAIN-WHILE-WRITING: a concurrent drain sees only fully-published
//     records (SPSC release/acquire publication; the TSAN job runs this test
//     to certify the claimed data-race freedom).
//  4. WITNESS plumbing on a live C2Store: every journal-facet op carries a
//     witness, witnesses are strictly increasing per lane in program order
//     (strong linearizability's own-step property made visible), reads stay
//     deliberately unwitnessed, transfers carry both buckets and their own
//     ticket, resize events carry the epoch, and the two exporters emit the
//     documented c2sl-trace-v1 / Chrome shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/c2store.h"
#include "telemetry/trace.h"
#include "telemetry/trace_export.h"

namespace c2sl {
namespace {

// --- 1. record layout --------------------------------------------------------

TEST(TraceRecordTest, OneCacheLinePlainLayout) {
  static_assert(sizeof(tel::TraceRecord) == 64);
  static_assert(std::is_trivially_copyable_v<tel::TraceRecord>);
  tel::TraceRecord r;
  EXPECT_EQ(r.key, -1);
  EXPECT_EQ(r.key_b, -1);
  EXPECT_EQ(r.witness, -1);
  EXPECT_EQ(r.epoch, -1);
}

TEST(TraceScopeTest, CommitsExactlyWhatTheSettersStaged) {
  tel::StoreTrace trace;
  tel::LaneTrace* lt = trace.lane(0);
  {
    tel::TraceScope tr(lt, tel::TraceOp::kTransfer, /*key=*/3, /*arg=*/40);
    tr.set_key_b(11);
    tr.set_result(7);
    tr.set_witness(7);
    tr.set_epoch(2);
  }
  // Single-tick capture: the record stays pending until the lane's next
  // activity stamps its response; an explicit flush() is that activity here.
  EXPECT_EQ(lt->published(), 0u);
  lt->flush();
  ASSERT_EQ(lt->published(), 1u);
  tel::LaneTraceDump ld;
  lt->drain_into(ld);
  ASSERT_EQ(ld.records.size(), 1u);
  const tel::TraceRecord& r = ld.records[0];
  EXPECT_EQ(r.op, static_cast<int32_t>(tel::TraceOp::kTransfer));
  EXPECT_EQ(r.key, 3);
  EXPECT_EQ(r.key_b, 11);
  EXPECT_EQ(r.arg, 40);
  EXPECT_EQ(r.result, 7);
  EXPECT_EQ(r.witness, 7);
  EXPECT_EQ(r.epoch, 2);
  EXPECT_GE(r.t1, r.t0);
}

TEST(TraceScopeTest, NullLaneIsInert) {
  tel::TraceScope tr(nullptr, tel::TraceOp::kMaxRead, 0, 0);
  tr.set_result(5);  // must not crash; there is nowhere to write
  tr.set_witness(5);
}

// --- 2. overflow drop accounting ---------------------------------------------

TEST(LaneTraceTest, OverflowDropsWithCountNeverBlocks) {
  tel::StoreTrace trace;
  tel::LaneTrace* lt = trace.lane(0);
  constexpr uint64_t kExtra = 7;
  for (uint64_t i = 0; i < tel::LaneTrace::kCap + kExtra; ++i) {
    trace.record_event(lt, tel::TraceOp::kCounterRead, /*key=*/1, /*arg=*/0,
                       /*result=*/static_cast<int64_t>(i), /*witness=*/-1,
                       /*epoch=*/-1);
  }
  EXPECT_EQ(lt->published(), tel::LaneTrace::kCap);
  EXPECT_EQ(lt->dropped(), kExtra);
  tel::LaneTraceDump ld;
  lt->drain_into(ld);
  EXPECT_EQ(ld.records.size(), tel::LaneTrace::kCap);
  EXPECT_EQ(ld.dropped, kExtra);
  // The retained prefix is the FIRST kCap records, untorn.
  EXPECT_EQ(ld.records.front().result, 0);
  EXPECT_EQ(ld.records.back().result,
            static_cast<int64_t>(tel::LaneTrace::kCap) - 1);

  // The store-level dump carries the drop through to the exporters.
  tel::TraceDump d = trace.dump(/*max_lanes=*/1, /*initial_shards=*/16);
  ASSERT_EQ(d.lanes.size(), 1u);
  EXPECT_EQ(d.lanes[0].dropped, kExtra);
  std::string json = tel::trace_to_json(d, "trace_test");
  EXPECT_NE(json.find("\"dropped_total\":7"), std::string::npos) << json;
}

// --- 3. drain while writing (the TSAN certificate) ---------------------------

TEST(LaneTraceTest, ConcurrentDrainSeesOnlyPublishedRecords) {
  tel::StoreTrace trace;
  tel::LaneTrace* lt = trace.lane(0);
  constexpr int64_t kWrites = 20000;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int64_t i = 0; i < kWrites; ++i) {
      tel::TraceScope tr(lt, tel::TraceOp::kCounterInc, /*key=*/2, /*arg=*/1);
      tr.set_witness(i);
      tr.set_result(i);
    }
    lt->flush();  // commit the last pending record before signalling done
    done.store(true, std::memory_order_release);
  });

  uint64_t last_seen = 0;
  while (!done.load(std::memory_order_acquire)) {
    tel::LaneTraceDump ld;
    lt->drain_into(ld);
    ASSERT_GE(ld.records.size(), last_seen) << "published count went backwards";
    last_seen = ld.records.size();
    for (size_t i = 0; i < ld.records.size(); ++i) {
      // Every drained record is fully formed: the witness staged before the
      // release-publish is visible, in order.
      ASSERT_EQ(ld.records[i].witness, static_cast<int64_t>(i));
      ASSERT_GE(ld.records[i].t1, ld.records[i].t0);
    }
  }
  writer.join();
  EXPECT_EQ(lt->published(), static_cast<uint64_t>(kWrites));
  EXPECT_EQ(lt->dropped(), 0u);
}

// --- 4. witness plumbing on a live store -------------------------------------

struct StoreTraceFixture {
  svc::C2StoreConfig cfg;
  StoreTraceFixture() {
    cfg.initial_shards = 4;
    cfg.max_threads = 4;
  }
};

TEST(StoreTraceTest, JournalOpsCarryStrictlyIncreasingWitnessesPerLane) {
  StoreTraceFixture f;
  svc::C2Store store(f.cfg);
  {
    svc::C2Session s = store.open_session();
    svc::CounterRef c = s.counter(uint64_t{1});
    svc::MaxRef m = s.max(uint64_t{2});
    for (int i = 0; i < 8; ++i) {
      c.inc();
      m.write(i);
      c.read();  // unwitnessed read between journal ops
      m.read();
    }
    s.close();
  }
  tel::TraceDump d = store.trace_dump();
  ASSERT_TRUE(d.enabled);
  ASSERT_EQ(d.lanes.size(), 1u);
  int64_t prev_witness = -1;
  int journal_ops = 0;
  for (const tel::TraceRecord& r : d.lanes[0].records) {
    auto op = static_cast<tel::TraceOp>(r.op);
    if (op == tel::TraceOp::kCounterInc || op == tel::TraceOp::kMaxWrite) {
      EXPECT_GE(r.witness, 0) << "journal op without a witness";
      EXPECT_GT(r.witness, prev_witness)
          << "per-lane witness order must be strict: program order on one "
             "lane IS real-time order";
      prev_witness = r.witness;
      EXPECT_GE(r.epoch, 0);
      ++journal_ops;
    } else if (op == tel::TraceOp::kCounterRead ||
               op == tel::TraceOp::kMaxRead) {
      EXPECT_EQ(r.witness, -1) << "plain reads are deliberately unwitnessed";
    }
  }
  EXPECT_EQ(journal_ops, 16);
  // The journal issued exactly the tickets the trace shows: 0..15 dense.
  EXPECT_EQ(prev_witness, 15);
}

TEST(StoreTraceTest, TransfersCarryBothBucketsAndTheirOwnTicket) {
  StoreTraceFixture f;
  svc::C2Store store(f.cfg);
  {
    svc::C2Session s = store.open_session();
    svc::CounterRef c = s.counter(uint64_t{5});
    c.inc();
    c.inc();
    int64_t ticket = s.transfer(uint64_t{5}, uint64_t{9}, 2);
    EXPECT_GE(ticket, 0);
    s.close();
  }
  tel::TraceDump d = store.trace_dump();
  ASSERT_EQ(d.lanes.size(), 1u);
  bool saw_transfer = false;
  for (const tel::TraceRecord& r : d.lanes[0].records) {
    if (static_cast<tel::TraceOp>(r.op) != tel::TraceOp::kTransfer) continue;
    saw_transfer = true;
    EXPECT_GE(r.key, 0);    // debit bucket
    EXPECT_GE(r.key_b, 0);  // credit bucket
    EXPECT_EQ(r.arg, 2);
    EXPECT_EQ(r.result, r.witness) << "the returned receipt IS the witness";
  }
  EXPECT_TRUE(saw_transfer);
}

TEST(StoreTraceTest, SnapshotWitnessIsTheJournalTail) {
  StoreTraceFixture f;
  svc::C2Store store(f.cfg);
  {
    svc::C2Session s = store.open_session();
    svc::CounterRef c = s.counter(uint64_t{3});
    c.inc();
    c.inc();
    c.inc();
    std::vector<int64_t> vals =
        s.snapshot({svc::SnapKey::counter(3), svc::SnapKey::counter(4)});
    EXPECT_EQ(vals[0], 3);
    s.close();
  }
  tel::TraceDump d = store.trace_dump();
  ASSERT_EQ(d.lanes.size(), 1u);
  bool saw_snapshot = false;
  for (const tel::TraceRecord& r : d.lanes[0].records) {
    if (static_cast<tel::TraceOp>(r.op) != tel::TraceOp::kSnapshot) continue;
    saw_snapshot = true;
    EXPECT_EQ(r.witness, 3) << "tail after three journaled incs";
    EXPECT_EQ(r.result, 3) << "total journaled incs below the tail";
    EXPECT_EQ(r.arg, 2) << "component count";
  }
  EXPECT_TRUE(saw_snapshot);
}

TEST(StoreTraceTest, SessionLifecycleAndResizeAreTracedAsEvents) {
  StoreTraceFixture f;
  svc::C2Store store(f.cfg);
  {
    svc::C2Session s = store.open_session();
    svc::CounterRef c = s.counter(uint64_t{1});
    c.inc();
    EXPECT_EQ(s.resize(8), svc::ResizeStatus::kInstalled);
    c.inc();
    s.close();
  }
  tel::TraceDump d = store.trace_dump();
  ASSERT_EQ(d.lanes.size(), 1u);
  int opens = 0, closes = 0, resizes = 0;
  for (const tel::TraceRecord& r : d.lanes[0].records) {
    switch (static_cast<tel::TraceOp>(r.op)) {
      case tel::TraceOp::kSessionOpen:
        ++opens;
        EXPECT_EQ(r.t0, r.t1) << "lifecycle records are point events";
        break;
      case tel::TraceOp::kSessionClose:
        ++closes;
        break;
      case tel::TraceOp::kResize:
        ++resizes;
        EXPECT_EQ(r.arg, 8) << "new shard count";
        EXPECT_GE(r.witness, 0) << "the kResize journal marker is the witness";
        EXPECT_GT(r.epoch, 0) << "the freshly published epoch";
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(opens, 1);
  EXPECT_EQ(closes, 1);
  EXPECT_EQ(resizes, 1);
}

TEST(StoreTraceTest, AggregateReadsWitnessTheDigestValue) {
  StoreTraceFixture f;
  svc::C2Store store(f.cfg);
  {
    svc::C2Session s = store.open_session();
    svc::CounterRef c = s.counter(uint64_t{1});
    svc::MaxRef m = s.max(uint64_t{2});
    c.inc();
    c.inc();
    m.write(5);
    EXPECT_EQ(s.counter_sum(), 2);
    EXPECT_EQ(s.global_max(), 5);
    s.close();
  }
  tel::TraceDump d = store.trace_dump();
  ASSERT_EQ(d.lanes.size(), 1u);
  for (const tel::TraceRecord& r : d.lanes[0].records) {
    auto op = static_cast<tel::TraceOp>(r.op);
    if (op == tel::TraceOp::kCounterSum) {
      EXPECT_EQ(r.witness, 2);
      EXPECT_EQ(r.result, 2) << "the digest FAA(0) value IS the witness";
    } else if (op == tel::TraceOp::kGlobalMax) {
      EXPECT_EQ(r.witness, 5);
      EXPECT_EQ(r.result, 5);
    }
  }
}

TEST(StoreTraceTest, ExportersEmitTheDocumentedShapes) {
  StoreTraceFixture f;
  svc::C2Store store(f.cfg);
  {
    svc::C2Session s = store.open_session();
    s.counter(uint64_t{1}).inc();
    s.close();
  }
  tel::TraceDump d = store.trace_dump();
  std::string json = tel::trace_to_json(d, "trace_test");
  EXPECT_NE(json.find("\"schema\":\"c2sl-trace-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"counter_inc\""), std::string::npos);
  EXPECT_NE(json.find("\"witness\":0"), std::string::npos);
  std::string chrome = tel::trace_to_chrome(d, "trace_test");
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("c2sl-trace-v1-chrome"), std::string::npos);
}

TEST(StoreTraceTest, MultiThreadedCaptureStaysConsistent) {
  StoreTraceFixture f;
  svc::C2Store store(f.cfg);
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&store, t] {
      svc::C2Session s = store.open_session();
      svc::CounterRef c = s.counter(static_cast<uint64_t>(t));
      for (int i = 0; i < kOps; ++i) c.inc();
    });
  }
  for (auto& th : pool) th.join();

  tel::TraceDump d = store.trace_dump();
  // Quiescent drain: every inc appears exactly once, witnesses globally
  // unique across lanes, strictly increasing within each lane.
  std::vector<int64_t> witnesses;
  for (const tel::LaneTraceDump& l : d.lanes) {
    EXPECT_EQ(l.dropped, 0u);
    int64_t prev = -1;
    for (const tel::TraceRecord& r : l.records) {
      if (static_cast<tel::TraceOp>(r.op) != tel::TraceOp::kCounterInc)
        continue;
      EXPECT_GT(r.witness, prev);
      prev = r.witness;
      witnesses.push_back(r.witness);
    }
  }
  ASSERT_EQ(witnesses.size(), static_cast<size_t>(kThreads * kOps));
  std::sort(witnesses.begin(), witnesses.end());
  for (size_t i = 0; i < witnesses.size(); ++i) {
    ASSERT_EQ(witnesses[i], static_cast<int64_t>(i))
        << "journal tickets must be dense and unique";
  }
}

}  // namespace
}  // namespace c2sl
