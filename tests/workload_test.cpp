// Tests for the workload layer: key distributions (determinism, skew, burst
// phases), op mixes, latency summarisation, the JSON writer, and an
// end-to-end engine smoke run.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "workload/distributions.h"
#include "workload/engine.h"
#include "workload/json_writer.h"
#include "workload/latency.h"
#include "workload/op_mix.h"

namespace c2sl {
namespace {

TEST(Distributions, UniformBoundsAndDeterminism) {
  wl::UniformKeys dist(100);
  Rng a(42), b(42);
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t k = dist.next(a, i);
    EXPECT_LT(k, 100u);
    EXPECT_EQ(k, dist.next(b, i)) << "same seed must give same keys";
  }
}

TEST(Distributions, ZipfianCdfIsAProperDistribution) {
  wl::ZipfianKeys dist(1000, 0.99, /*scramble=*/false);
  double acc = 0.0;
  for (uint64_t r = 0; r < 1000; ++r) {
    double m = dist.mass(r);
    EXPECT_GT(m, 0.0);
    if (r > 0) {
      EXPECT_LE(m, dist.mass(r - 1) + 1e-12) << "mass must be non-increasing";
    }
    acc += m;
  }
  EXPECT_NEAR(acc, 1.0, 1e-9);
}

TEST(Distributions, ZipfianIsSkewed) {
  const uint64_t space = 1000;
  wl::ZipfianKeys dist(space, 0.99, /*scramble=*/false);
  Rng rng(7);
  std::map<uint64_t, int> freq;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++freq[dist.next(rng, static_cast<uint64_t>(i))];
  // Rank 0 is the hottest; it should dwarf the uniform share of draws/space.
  EXPECT_GT(freq[0], 10 * draws / static_cast<int>(space));
  // And the top-10 ranks should hold a large constant fraction of all draws.
  int top10 = 0;
  for (uint64_t r = 0; r < 10; ++r) top10 += freq[r];
  EXPECT_GT(top10, draws / 5);
}

TEST(Distributions, ZipfianScrambleScattersButKeepsSkew) {
  const uint64_t space = 1000;
  wl::ZipfianKeys dist(space, 0.99, /*scramble=*/true);
  Rng rng(7);
  std::map<uint64_t, int> freq;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    uint64_t k = dist.next(rng, static_cast<uint64_t>(i));
    ASSERT_LT(k, space);
    ++freq[k];
  }
  int hottest = 0;
  for (const auto& [k, n] : freq) {
    (void)k;
    hottest = std::max(hottest, n);
  }
  EXPECT_GT(hottest, 10 * draws / static_cast<int>(space)) << "skew must survive scatter";
}

TEST(Distributions, HotKeyBurstPhases) {
  const uint64_t space = 10000, hot_set = 10, period = 100;
  wl::HotKeyBurstKeys dist(space, hot_set, 0.9, period);
  Rng rng(3);
  int hot_phase_hits = 0, cold_phase_hits = 0;
  const int per_phase = 5000;
  for (int i = 0; i < per_phase; ++i) {
    // op indices 0..period-1 modulo 2*period are the hot phase
    uint64_t hot_op = (static_cast<uint64_t>(i) / period) * 2 * period +
                      static_cast<uint64_t>(i) % period;
    uint64_t cold_op = hot_op + period;
    ASSERT_TRUE(dist.in_hot_phase(hot_op));
    ASSERT_FALSE(dist.in_hot_phase(cold_op));
    if (dist.next(rng, hot_op) < hot_set) ++hot_phase_hits;
    if (dist.next(rng, cold_op) < hot_set) ++cold_phase_hits;
  }
  EXPECT_GT(hot_phase_hits, per_phase / 2) << "hot phase must hit the hot set often";
  EXPECT_LT(cold_phase_hits, per_phase / 10) << "cold phase must be ~uniform";
}

TEST(Distributions, FactoryByName) {
  EXPECT_EQ(wl::make_dist("uniform", 10)->name(), "uniform");
  EXPECT_EQ(wl::make_dist("zipfian", 10)->name(), "zipfian");
  EXPECT_EQ(wl::make_dist("hotburst", 10)->name(), "hotburst");
  EXPECT_THROW(wl::make_dist("nope", 10), PreconditionError);
}

// The per-rank masses must conserve probability and decay monotonically even
// deep into the tail, where the naive largest-term-first accumulation loses
// the terms to float rounding (the retired code papered over the drift with a
// forced cdf.back()=1.0). With Kahan compensation each stored partial is
// accurate to ~1 ulp, so the checks below can be tight.
TEST(Distributions, ZipfianMassConservationDeepTail) {
  const uint64_t space = uint64_t{1} << 20;
  for (double theta : {0.99, 1.2}) {
    wl::ZipfianKeys dist(space, theta, /*scramble=*/false);
    // Telescoped conservation: the masses sum to the final CDF entry, which
    // must be exactly 1.0 (not merely close) now that nothing is papered.
    long double acc = 0.0L;
    double prev = dist.mass(0);
    for (uint64_t r = 0; r < space; ++r) {
      double m = dist.mass(r);
      EXPECT_GT(m, 0.0) << "rank " << r << " lost its mass to rounding";
      EXPECT_LE(m, prev) << "mass must be non-increasing at rank " << r;
      prev = m;
      acc += m;
    }
    EXPECT_NEAR(static_cast<double>(acc), 1.0, 1e-12) << "theta " << theta;
    // Tail accuracy: compare far-tail masses against the directly computed
    // term/total in long double. Plain double accumulation fails this by
    // orders of magnitude; compensated summation passes at 1e-6 relative.
    long double total = 0.0L;
    for (uint64_t r = 0; r < space; ++r) {
      total += 1.0L / powl(static_cast<long double>(r + 1),
                           static_cast<long double>(theta));
    }
    for (uint64_t r : {space - 1, space / 2, space / 3}) {
      long double expected = 1.0L / powl(static_cast<long double>(r + 1),
                                         static_cast<long double>(theta)) /
                             total;
      EXPECT_NEAR(dist.mass(r) / static_cast<double>(expected), 1.0, 1e-6)
          << "rank " << r << " theta " << theta;
    }
  }
}

TEST(OpMix, NamedMixesAreNormalisedAndPickable) {
  for (const char* name :
       {"read_heavy", "write_heavy", "mixed", "aggregate_scan", "sum_heavy"}) {
    wl::OpMix mix = wl::OpMix::by_name(name);
    EXPECT_EQ(mix.name, name);
    EXPECT_NEAR(mix.total_weight(), 1.0, 1e-9);
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
      int k = static_cast<int>(mix.pick(rng));
      EXPECT_GE(k, 0);
      EXPECT_LT(k, wl::kOpKindCount);
    }
  }
}

TEST(OpMix, PickTracksWeights) {
  wl::OpMix mix{"test", {{wl::OpKind::kMaxRead, 0.9}, {wl::OpKind::kMaxWrite, 0.1}}};
  Rng rng(5);
  int reads = 0;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    if (mix.pick(rng) == wl::OpKind::kMaxRead) ++reads;
  }
  EXPECT_GT(reads, draws * 85 / 100);
  EXPECT_LT(reads, draws * 95 / 100);
}

TEST(Latency, ExactPercentilesOnKnownData) {
  std::vector<int64_t> samples;
  for (int64_t i = 1; i <= 1000; ++i) samples.push_back(i);  // 1..1000 ns
  wl::LatencyStats s = wl::summarize_latencies(samples);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min_ns, 1);
  EXPECT_EQ(s.max_ns, 1000);
  // Nearest-rank on 1..1000 is exact: the ceil(q*1000)-th order statistic.
  EXPECT_EQ(s.p50_ns, 500);
  EXPECT_EQ(s.p90_ns, 900);
  EXPECT_EQ(s.p99_ns, 990);
  EXPECT_EQ(s.p999_ns, 999);
  EXPECT_NEAR(s.mean_ns, 500.5, 0.01);
}

// Pins the nearest-rank quantile rule (ceil(q*count)-th order statistic) on
// small known vectors — exactly where the retired q*(count-1)+0.5 rounding
// misbehaved: even-count p50 picked the UPPER middle sample, and p99/p999
// collapsed onto max one rank early on small sample sets.
TEST(Latency, NearestRankRuleOnSmallKnownVectors) {
  std::vector<int64_t> four = {10, 20, 30, 40};
  wl::LatencyStats s4 = wl::summarize_latencies(four);
  EXPECT_EQ(s4.p50_ns, 20) << "even-count p50 is the lower middle sample";
  EXPECT_EQ(s4.p90_ns, 40);
  EXPECT_EQ(s4.p99_ns, 40);

  std::vector<int64_t> one = {7};
  wl::LatencyStats s1 = wl::summarize_latencies(one);
  EXPECT_EQ(s1.p50_ns, 7);
  EXPECT_EQ(s1.p999_ns, 7);

  // 1..100: p99 must resolve to the 99th sample, NOT max — the small-count
  // collapse the old rounding caused. p999 still has to saturate at max (100
  // samples cannot resolve a 99.9th percentile; that is genuine, not drift).
  std::vector<int64_t> hundred;
  for (int64_t i = 1; i <= 100; ++i) hundred.push_back(i);
  wl::LatencyStats s100 = wl::summarize_latencies(hundred);
  EXPECT_EQ(s100.p50_ns, 50);
  EXPECT_EQ(s100.p90_ns, 90);
  EXPECT_EQ(s100.p99_ns, 99) << "p99 of 100 samples is the 99th, not max";
  EXPECT_EQ(s100.p999_ns, 100);

  // Order statistics are rank-based, not value-interpolated: a wild max must
  // not drag the tail quantiles with it.
  std::vector<int64_t> skew = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1000000};
  wl::LatencyStats sk = wl::summarize_latencies(skew);
  EXPECT_EQ(sk.p50_ns, 1);
  EXPECT_EQ(sk.p90_ns, 1) << "p90 of 10 samples is the 9th order statistic";
  EXPECT_EQ(sk.p99_ns, 1000000);
}

TEST(Latency, EmptyIsZeroed) {
  std::vector<int64_t> none;
  wl::LatencyStats s = wl::summarize_latencies(none);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99_ns, 0);
}

TEST(JsonWriter, NestedDocumentsAndEscaping) {
  wl::JsonWriter w;
  w.begin_object();
  w.field("name", "a\"b\\c\n");
  w.field("n", int64_t{-3});
  w.field("ok", true);
  w.key("arr").begin_array().value(int64_t{1}).value(int64_t{2}).end_array();
  w.key("inner").begin_object().field("x", 1.5).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a\\\"b\\\\c\\n\",\"n\":-3,\"ok\":true,"
            "\"arr\":[1,2],\"inner\":{\"x\":1.5}}");
}

// Control characters below 0x20 must never reach the output raw — a label or
// string key containing one would emit invalid JSON that bench_diff.py (and
// any json.load) rejects. Common ones use the short escapes; the rest get
// \u00XX. Round-trip shape is pinned byte-for-byte.
TEST(JsonWriter, ControlCharactersEscapedAsUnicode) {
  wl::JsonWriter w;
  w.begin_object();
  w.field("label", "a\x01" "b\x1f" "c\td\ne\rf");
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"label\":\"a\\u0001b\\u001fc\\td\\ne\\rf\"}");

  // Keys are escaped through the same path as values.
  wl::JsonWriter wk;
  wk.begin_object();
  wk.field("bad\x02key", int64_t{1});
  wk.end_object();
  EXPECT_EQ(wk.str(), "{\"bad\\u0002key\":1}");

  // Every byte below 0x20 is covered — none may appear raw in the output.
  std::string all;
  for (char c = 1; c < 0x20; ++c) all += c;
  wl::JsonWriter wa;
  wa.begin_object();
  wa.field("all", all);
  wa.end_object();
  for (char c = 1; c < 0x20; ++c) {
    EXPECT_EQ(wa.str().find(c), std::string::npos)
        << "raw control byte " << static_cast<int>(c) << " leaked into JSON";
  }
}

TEST(JsonWriter, ArraysOfObjects) {
  wl::JsonWriter w;
  w.begin_array();
  w.begin_object().field("a", int64_t{1}).end_object();
  w.begin_object().field("b", int64_t{2}).end_object();
  w.end_array();
  EXPECT_EQ(w.str(), "[{\"a\":1},{\"b\":2}]");
}

TEST(Engine, SmokeRunAccountsForEveryOperation) {
  wl::WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 300;
  cfg.key_space = 64;
  cfg.dist = "uniform";
  cfg.mix = wl::OpMix::mixed();
  cfg.seed = 9;
  cfg.store.initial_shards = 4;
  wl::WorkloadResult r = wl::run_workload(cfg);
  EXPECT_EQ(r.total_ops, 600u);
  EXPECT_EQ(r.latency.count, 600u);
  uint64_t counted = 0;
  for (int k = 0; k < wl::kOpKindCount; ++k) counted += r.per_kind[k];
  EXPECT_EQ(counted, 600u);
  EXPECT_GT(r.throughput_ops_s, 0.0);
  EXPECT_GE(r.final_counter_sum, 0);
  EXPECT_EQ(r.final_counter_sum, static_cast<int64_t>(r.per_kind[static_cast<int>(
                                     wl::OpKind::kCounterInc)]));
}

TEST(Engine, AggregateScanMixExercisesGlobalPaths) {
  wl::WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 200;
  cfg.key_space = 64;
  cfg.dist = "zipfian";
  cfg.mix = wl::OpMix::aggregate_scan();
  cfg.seed = 4;
  cfg.store.initial_shards = 8;
  wl::WorkloadResult r = wl::run_workload(cfg);
  EXPECT_GT(r.per_kind[static_cast<int>(wl::OpKind::kGlobalMax)], 0u);
  EXPECT_GT(r.per_kind[static_cast<int>(wl::OpKind::kCounterSum)], 0u);
  EXPECT_LE(r.final_global_max, r.cfg.store.max_value);
}

TEST(Engine, TransferAuditMixConservesUnderConcurrency) {
  // The conservation suite at engine level: the kSnapshot case itself
  // C2SL_CHECKs that every cut balances, and run_workload re-audits a full
  // replay at quiescence — reaching the end of this test IS the assertion.
  // (TSAN/ASAN CI runs this file, so the audit also runs sanitized.)
  wl::WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 400;
  cfg.key_space = 64;
  cfg.dist = "uniform";
  cfg.mix = wl::OpMix::transfer_audit();
  cfg.seed = 11;
  cfg.store.initial_shards = 8;
  wl::WorkloadResult r = wl::run_workload(cfg);
  EXPECT_GT(r.per_kind[static_cast<int>(wl::OpKind::kTransfer)], 0u);
  EXPECT_GT(r.per_kind[static_cast<int>(wl::OpKind::kSnapshot)], 0u);
  // Only transfers journal in this mix; snapshots and reads never do.
  EXPECT_EQ(r.journal_tickets,
            static_cast<int64_t>(r.per_kind[static_cast<int>(wl::OpKind::kTransfer)]));
  // Transfers move balance but never create it.
  EXPECT_EQ(r.final_counter_sum, 0);
}

TEST(Engine, SnapshotHeavyMixRunsBothImplementations) {
  for (const char* impl : {"digest", "loop"}) {
    wl::WorkloadConfig cfg;
    cfg.threads = 2;
    cfg.ops_per_thread = 300;
    cfg.key_space = 64;
    cfg.dist = "uniform";
    cfg.mix = wl::OpMix::snapshot_heavy();
    cfg.snap_impl = impl;
    cfg.seed = 13;
    cfg.store.initial_shards = 8;
    wl::WorkloadResult r = wl::run_workload(cfg);
    EXPECT_GT(r.per_kind[static_cast<int>(wl::OpKind::kSnapshot)], 0u) << impl;
    // Incs journal; snapshots do not (in either implementation).
    EXPECT_EQ(r.journal_tickets,
              static_cast<int64_t>(r.per_kind[static_cast<int>(wl::OpKind::kCounterInc)]))
        << impl;
    EXPECT_EQ(r.final_counter_sum, static_cast<int64_t>(r.per_kind[static_cast<int>(
                                       wl::OpKind::kCounterInc)]))
        << impl;
  }
}

TEST(Engine, JsonEntryCarriesTheSchema) {
  wl::WorkloadConfig cfg;
  cfg.threads = 1;
  cfg.ops_per_thread = 100;
  cfg.key_space = 16;
  cfg.store.initial_shards = 2;
  wl::WorkloadResult r = wl::run_workload(cfg);
  std::string doc = wl::result_to_json("test_suite", "unit/smoke", r);
  for (const char* needle :
       {"\"schema\":\"c2sl-bench-v1\"", "\"suite\":\"test_suite\"",
        "\"bench\":\"unit/smoke\"", "\"throughput_ops_per_s\"", "\"latency_ns\"",
        "\"p99\"", "\"op_counts\"", "\"initialized_shards\""}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << needle << "\nin: " << doc;
  }
}

TEST(Engine, DeterministicOpSequencesAcrossRuns) {
  wl::WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 400;
  cfg.key_space = 32;
  cfg.dist = "zipfian";
  cfg.mix = wl::OpMix::write_heavy();
  cfg.seed = 77;
  cfg.store.initial_shards = 4;
  wl::WorkloadResult a = wl::run_workload(cfg);
  wl::WorkloadResult b = wl::run_workload(cfg);
  for (int k = 0; k < wl::kOpKindCount; ++k) {
    EXPECT_EQ(a.per_kind[k], b.per_kind[k]) << "op mix must replay from the seed";
  }
  EXPECT_EQ(a.final_counter_sum, b.final_counter_sum);
}

// Both ref binding modes must run the SAME deterministic op/key sequences
// (the mode changes routing cost, not semantics) and conserve counters.
TEST(Engine, BindModesAgreeOnSemantics) {
  wl::WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 300;
  cfg.key_space = 64;
  cfg.dist = "zipfian";
  cfg.mix = wl::OpMix::mixed();
  cfg.seed = 21;
  cfg.store.initial_shards = 4;
  cfg.bind = "cached";
  wl::WorkloadResult cached = wl::run_workload(cfg);
  cfg.bind = "per_op";
  wl::WorkloadResult per_op = wl::run_workload(cfg);
  for (int k = 0; k < wl::kOpKindCount; ++k) {
    EXPECT_EQ(cached.per_kind[k], per_op.per_kind[k]) << "bind mode changed the op mix";
  }
  EXPECT_EQ(cached.final_counter_sum, per_op.final_counter_sum);
  EXPECT_EQ(cached.final_counter_sum,
            static_cast<int64_t>(
                cached.per_kind[static_cast<int>(wl::OpKind::kCounterInc)]));
  // The JSON config records which mode produced an artifact (bench_diff keys
  // its comparison on this).
  std::string doc = wl::result_to_json("t", "b", cached);
  EXPECT_NE(doc.find("\"bind\":\"cached\""), std::string::npos) << doc;
}

TEST(Engine, RejectsUnknownBindMode) {
  wl::WorkloadConfig cfg;
  cfg.threads = 1;
  cfg.ops_per_thread = 10;
  cfg.bind = "telepathic";
  EXPECT_THROW(wl::run_workload(cfg), PreconditionError);
}

// Both counter_sum implementations must run the SAME deterministic op/key
// sequences (the impl changes the aggregate read path, not semantics) and
// agree on the quiesced final sum; the artifact must record which one ran.
TEST(Engine, SumImplModesAgreeOnSemantics) {
  wl::WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 300;
  cfg.key_space = 64;
  cfg.dist = "zipfian";
  cfg.mix = wl::OpMix::sum_heavy();
  cfg.seed = 33;
  cfg.store.initial_shards = 4;
  cfg.sum_impl = "digest";
  wl::WorkloadResult digest = wl::run_workload(cfg);
  cfg.sum_impl = "scan";
  wl::WorkloadResult scan = wl::run_workload(cfg);
  for (int k = 0; k < wl::kOpKindCount; ++k) {
    EXPECT_EQ(digest.per_kind[k], scan.per_kind[k]) << "sum impl changed the op mix";
  }
  EXPECT_GT(digest.per_kind[static_cast<int>(wl::OpKind::kCounterSum)], 0u);
  EXPECT_EQ(digest.final_counter_sum, scan.final_counter_sum);
  EXPECT_EQ(digest.final_counter_sum,
            static_cast<int64_t>(
                digest.per_kind[static_cast<int>(wl::OpKind::kCounterInc)]));
  std::string doc = wl::result_to_json("t", "b", scan);
  EXPECT_NE(doc.find("\"sum_impl\":\"scan\""), std::string::npos) << doc;
}

TEST(Engine, RejectsUnknownSumImpl) {
  wl::WorkloadConfig cfg;
  cfg.threads = 1;
  cfg.ops_per_thread = 10;
  cfg.sum_impl = "oracle";
  EXPECT_THROW(wl::run_workload(cfg), PreconditionError);
}

// Session churn with fewer lanes than threads: both acquisition modes must
// complete every cycle (no op lost to a blocked or failed open), count every
// cycle under kSessionChurn, and conserve the counter traffic run through the
// churned sessions. The engine must NOT raise the lane count to the thread
// count in this mix — the contention is the scenario.
TEST(Engine, SessionChurnModesAgreeOnSemantics) {
  wl::WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 250;
  cfg.key_space = 64;
  cfg.dist = "uniform";
  cfg.mix = wl::OpMix::session_churn();
  cfg.seed = 7;
  cfg.store.initial_shards = 4;
  cfg.store.max_threads = 2;  // lanes < threads: every open contends
  for (const char* mode : {"block", "try"}) {
    cfg.acquire = mode;
    wl::WorkloadResult r = wl::run_workload(cfg);
    EXPECT_EQ(r.cfg.store.max_threads, 2)
        << "churn mode must keep the configured lane count";
    EXPECT_EQ(r.total_ops, 4u * 250u) << mode;
    EXPECT_EQ(r.per_kind[static_cast<int>(wl::OpKind::kSessionChurn)], 4u * 250u)
        << mode;
    EXPECT_EQ(r.final_counter_sum, 4 * 250)
        << mode << ": every churned session must land exactly one inc";
    std::string doc = wl::result_to_json("t", "b", r);
    EXPECT_NE(doc.find(std::string("\"acquire\":\"") + mode + "\""),
              std::string::npos)
        << doc;
  }
}

TEST(Engine, RejectsUnknownAcquireMode) {
  wl::WorkloadConfig cfg;
  cfg.threads = 1;
  cfg.ops_per_thread = 10;
  cfg.mix = wl::OpMix::session_churn();
  cfg.acquire = "psychic";
  EXPECT_THROW(wl::run_workload(cfg), PreconditionError);
}

}  // namespace
}  // namespace c2sl
