#!/usr/bin/env python3
"""atomics_audit.py — the no-CAS conformance linter (CI gate).

Scans the C++ tree with a real tokenizer (comment/string/raw-string safe; see
tools/c2sl_lint/) and enforces four rules as hard failures:

  1. no-CAS        compare_exchange_* / atomic_compare_exchange* / inline asm
                   only under src/baselines/ and src/primitives/swap_cas.h;
  2. annotations   every atomic site in src/runtime|service|telemetry carries
                   a `// c2sl-atomic: <kind> <order> — <rationale>` that
                   matches the code's operation and memory order;
  3. inventory     tools/atomics_inventory.json equals a fresh scan
                   (regenerate with --write, review the diff);
  4. parity        every runtime/service RMW has an adjacent
                   C2SL_TEL_PRIM_{FAA,TAS,SWAP}() hook (or `noprofile`),
                   and every hook has its RMW.

Usage:
  python3 tools/atomics_audit.py --check           # CI mode (default)
  python3 tools/atomics_audit.py --write           # regenerate the inventory
  python3 tools/atomics_audit.py --check --root R  # lint a different tree

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from c2sl_lint import run_all  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="no-CAS conformance linter and atomics inventory")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="verify all four rules incl. inventory freshness "
                           "(default)")
    mode.add_argument("--write", action="store_true",
                      help="regenerate the checked-in inventory, then verify "
                           "the other rules")
    parser.add_argument("--root", default=None,
                        help="repo root to scan (default: this script's "
                             "parent directory)")
    parser.add_argument("--inventory", default=None,
                        help="inventory path (default: "
                             "<root>/tools/atomics_inventory.json)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line on success")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root) if args.root else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    inventory = args.inventory or os.path.join(root, "tools",
                                               "atomics_inventory.json")

    findings, payload = run_all(root, inventory, write=args.write)

    for f in findings:
        print(f, file=sys.stderr)

    if args.write:
        print(f"wrote {os.path.relpath(inventory, root)}: "
              f"{payload['site_count']} sites "
              f"({', '.join(f'{k}={v}' for k, v in payload['sites_by_kind'].items())})")
    elif not args.quiet:
        status = "FAIL" if findings else "OK"
        print(f"atomics audit {status}: {payload['site_count']} sites, "
              f"{len(findings)} finding(s)")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
