#!/usr/bin/env python3
"""Fixture tests for the no-CAS conformance linter (tools/c2sl_lint).

Each fixture builds a tiny synthetic repo in a temp directory and asserts the
audit's verdict — both directions: the seeded violation MUST be caught, and
the benign twin MUST stay clean. Wired into ctest as `atomics_audit_py`
(tier-1), like metrics_diff_py.

Run directly:  python3 tools/atomics_audit_test.py
"""

import json
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from c2sl_lint.tokenizer import tokenize
from c2sl_lint.scanner import parse_annotation, scan_file
from c2sl_lint import rules


class TempRepo:
    """A throwaway tree the rules run against."""

    def __init__(self):
        self.root = tempfile.mkdtemp(prefix="c2sl_lint_test_")

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def scan(self):
        from c2sl_lint.scanner import scan_tree
        return scan_tree(self.root, rules.CAS_SCAN_DIRS)

    def cleanup(self):
        shutil.rmtree(self.root, ignore_errors=True)


class TokenizerTest(unittest.TestCase):
    def test_comments_and_strings_produce_no_identifiers(self):
        src = (
            '// compare_exchange_weak in a line comment\n'
            '/* compare_exchange_strong in a block */\n'
            'const char* s = "x.compare_exchange_weak(a, b)";\n'
            "char c = 'x';\n"
        )
        tokens, comments = tokenize(src)
        idents = {t.text for t in tokens if t.kind == "ident"}
        self.assertNotIn("compare_exchange_weak", idents)
        self.assertNotIn("compare_exchange_strong", idents)
        self.assertEqual(len(comments), 2)

    def test_raw_string_payload_is_not_code(self):
        src = 'auto s = R"(cas.compare_exchange_weak(a, b))";\n' \
              'auto t = u8R"delim(x.fetch_add(1))delim";\n' \
              'int real = y.fetch_add(1);\n'
        tokens, _ = tokenize(src)
        idents = [t.text for t in tokens if t.kind == "ident"]
        self.assertNotIn("compare_exchange_weak", idents)
        # Only the real fetch_add outside the raw strings survives.
        self.assertEqual(idents.count("fetch_add"), 1)

    def test_trailing_comment_flag(self):
        src = 'int x = 1;  // trailing\n// leading\n'
        _, comments = tokenize(src)
        self.assertTrue(comments[0].trailing)
        self.assertFalse(comments[1].trailing)

    def test_digit_separator_does_not_open_char_literal(self):
        src = "int x = 1'000'000; int y = q.fetch_add(1);\n"
        tokens, _ = tokenize(src)
        idents = [t.text for t in tokens if t.kind == "ident"]
        self.assertIn("fetch_add", idents)


class AnnotationGrammarTest(unittest.TestCase):
    def test_parses_kind_order_rationale(self):
        pairs, rationale, errors = parse_annotation(
            "c2sl-atomic: faa seq_cst — linearization point")
        self.assertEqual(pairs, [("faa", "seq_cst", False)])
        self.assertEqual(rationale, "linearization point")
        self.assertEqual(errors, [])

    def test_double_hyphen_separator_and_noprofile(self):
        pairs, rationale, errors = parse_annotation(
            "c2sl-atomic: faa relaxed noprofile -- diagnostics")
        self.assertEqual(pairs, [("faa", "relaxed", True)])
        self.assertEqual(rationale, "diagnostics")
        self.assertEqual(errors, [])

    def test_multi_pair(self):
        pairs, _, errors = parse_annotation(
            "c2sl-atomic: store relaxed, load relaxed — single-writer cell")
        self.assertEqual(pairs, [("store", "relaxed", False),
                                 ("load", "relaxed", False)])
        self.assertEqual(errors, [])

    def test_rejects_unknown_kind_order_flag_and_missing_rationale(self):
        _, _, errors = parse_annotation("c2sl-atomic: casx weird maybe")
        joined = "\n".join(errors)
        self.assertIn("unknown kind 'casx'", joined)
        self.assertIn("unknown memory order 'weird'", joined)
        self.assertIn("no rationale", joined)


class RepoRulesTest(unittest.TestCase):
    def setUp(self):
        self.repo = TempRepo()

    def tearDown(self):
        self.repo.cleanup()

    def _findings(self, rule=None):
        scans = self.repo.scan()
        out = []
        out += rules.check_no_cas(scans)
        out += rules.check_annotations(scans)
        out += rules.check_profile_parity(scans)
        if rule is not None:
            out = [f for f in out if f.rule == rule]
        return out

    # --- rule 1: no-CAS ----------------------------------------------------

    def test_cas_outside_allowlist_fails(self):
        self.repo.write("src/runtime/bad.h",
                        "int f(std::atomic<int>& a) {\n"
                        "  int e = 0;\n"
                        "  return a.compare_exchange_strong(e, 1);\n"
                        "}\n")
        findings = self._findings("no-cas")
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 3)

    def test_cas_smuggled_via_alias_and_macro_fails(self):
        # Aliasing the object or hiding the call in a macro body still leaves
        # the member name as a code token — both must be caught.
        self.repo.write("src/runtime/alias.h",
                        "auto& alias = counter;\n"
                        "int v = alias.compare_exchange_weak(e, d);\n")
        self.repo.write("src/runtime/macro.h",
                        "#define SNEAKY_CAS(a, e, d) \\\n"
                        "  (a).compare_exchange_strong((e), (d))\n")
        self.repo.write("src/runtime/builtin.h",
                        "long w = __sync_val_compare_and_swap(&x, 0, 1);\n")
        findings = self._findings("no-cas")
        self.assertEqual({f.file for f in findings},
                         {"src/runtime/alias.h", "src/runtime/macro.h",
                          "src/runtime/builtin.h"})

    def test_inline_asm_is_flagged(self):
        self.repo.write("src/runtime/asm.h",
                        'void f() { asm volatile("lock cmpxchg %1, %0"); }\n')
        findings = self._findings("no-cas")
        self.assertTrue(any("asm" in f.message for f in findings))

    def test_cas_in_allowlist_passes(self):
        self.repo.write("src/baselines/cas_counter.h",
                        "bool ok = a.compare_exchange_strong(e, d);\n")
        self.repo.write("src/primitives/swap_cas.h",
                        "// the simulated CAS primitive\n"
                        "Val compare_and_swap(sim::Ctx& ctx);\n")
        self.assertEqual(self._findings("no-cas"), [])

    def test_cas_in_comment_or_string_passes(self):
        self.repo.write("src/runtime/prose.h",
                        "// a CAS (compare_exchange_strong) would be wrong\n"
                        'const char* doc = "compare_exchange_weak";\n'
                        'auto raw = R"(x.compare_exchange_strong(e, d))";\n')
        self.assertEqual(self._findings("no-cas"), [])

    # --- rule 2: annotation audit -------------------------------------------

    def test_unannotated_site_in_enforced_dir_fails(self):
        self.repo.write("src/runtime/counter.h",
                        "void add() { total_.fetch_add(1, "
                        "std::memory_order_seq_cst); }\n")
        findings = self._findings("annotation")
        self.assertEqual(len(findings), 1)
        self.assertIn("no covering c2sl-atomic annotation",
                      findings[0].message)

    def test_unannotated_site_outside_enforced_dirs_passes(self):
        self.repo.write("src/util/gate.h",
                        "void g() { gate_.fetch_add(1); }\n")
        self.assertEqual(self._findings("annotation"), [])

    def test_kind_mismatch_fails(self):
        self.repo.write("src/runtime/k.h",
                        "// c2sl-atomic: faa seq_cst — claims FAA, code swaps\n"
                        "int64_t old = ts_.exchange(1, "
                        "std::memory_order_seq_cst);\n")
        findings = self._findings("annotation")
        self.assertEqual(len(findings), 1)
        self.assertIn("claims kind 'faa'", findings[0].message)

    def test_order_mismatch_fails(self):
        self.repo.write("src/runtime/o.h",
                        "// c2sl-atomic: load acquire — claims acquire\n"
                        "int64_t v = head_.load(std::memory_order_seq_cst);\n")
        findings = self._findings("annotation")
        self.assertEqual(len(findings), 1)
        self.assertIn("claims memory order 'acquire'", findings[0].message)

    def test_default_order_is_seq_cst(self):
        self.repo.write("src/runtime/d.h",
                        "// c2sl-atomic: faa seq_cst — implicit order\n"
                        "gate_.fetch_add(1);\n"
                        "C2SL_TEL_PRIM_FAA();\n")
        # order check passes (implicit seq_cst == claimed seq_cst); parity is
        # irrelevant here (macro below, not above — covered elsewhere).
        self.assertEqual(self._findings("annotation"), [])

    def test_trailing_annotation_multi_pair_binds_in_column_order(self):
        self.repo.write(
            "src/telemetry/cell.h",
            "void bump() {\n"
            "  // c2sl-atomic: store relaxed, load relaxed — single writer\n"
            "  c.store(c.load(std::memory_order_relaxed) + 1,\n"
            "          std::memory_order_relaxed);\n"
            "}\n")
        self.assertEqual(self._findings("annotation"), [])

    def test_overclaiming_annotation_fails(self):
        self.repo.write("src/runtime/over.h",
                        "// c2sl-atomic: load seq_cst, load seq_cst — two?\n"
                        "int64_t v = head_.load(std::memory_order_seq_cst);\n")
        findings = self._findings("annotation")
        self.assertEqual(len(findings), 1)
        self.assertIn("only 1 matched", findings[0].message)

    def test_rmw_outside_toolbox_fails(self):
        self.repo.write("src/runtime/sub.h",
                        "int64_t v = n_.fetch_sub(1, "
                        "std::memory_order_seq_cst);\n")
        findings = self._findings("annotation")
        self.assertTrue(any("outside the consensus-2 toolbox" in f.message
                            for f in findings))

    def test_sim_fetch_add_is_not_a_site(self):
        self.repo.write("src/service/bridge.cpp",
                        "void inc(sim::Ctx& ctx) {\n"
                        "  ctx.world->get(digest_).fetch_add(ctx, 1);\n"
                        "}\n")
        self.assertEqual(self._findings(), [])

    # --- rule 3: inventory drift --------------------------------------------

    def test_inventory_roundtrip_and_drift(self):
        self.repo.write("src/runtime/inv.h",
                        "// c2sl-atomic: faa seq_cst — the op\n"
                        "total_.fetch_add(1, std::memory_order_seq_cst);\n"
                        "C2SL_TEL_PRIM_FAA();\n")
        inv = os.path.join(self.repo.root, "inv.json")
        payload = rules.inventory_payload(self.repo.scan())
        with open(inv, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        self.assertEqual(rules.check_inventory(payload, inv), [])
        # Drift: a new site appears.
        self.repo.write("src/runtime/inv2.h",
                        "// c2sl-atomic: load relaxed — diag\n"
                        "int64_t v = x_.load(std::memory_order_relaxed);\n")
        fresh = rules.inventory_payload(self.repo.scan())
        findings = rules.check_inventory(fresh, inv)
        self.assertTrue(any("not in the checked-in inventory" in f.message
                            for f in findings))
        self.assertTrue(any("--write" in f.message for f in findings))
        # Drift: an order changes in place.
        with open(inv, "w", encoding="utf-8") as f:
            json.dump(fresh, f)
        self.repo.write("src/runtime/inv2.h",
                        "// c2sl-atomic: load acquire — diag\n"
                        "int64_t v = x_.load(std::memory_order_acquire);\n")
        findings = rules.check_inventory(
            rules.inventory_payload(self.repo.scan()), inv)
        self.assertTrue(any("changed" in f.message for f in findings))

    def test_missing_inventory_fails(self):
        findings = rules.check_inventory(
            rules.inventory_payload(self.repo.scan()),
            os.path.join(self.repo.root, "absent.json"))
        self.assertEqual(len(findings), 1)
        self.assertIn("missing", findings[0].message)

    # --- rule 4: profile parity ---------------------------------------------

    def test_unprofiled_rmw_fails(self):
        self.repo.write("src/runtime/p.h",
                        "// c2sl-atomic: faa seq_cst — linearization point\n"
                        "total_.fetch_add(1, std::memory_order_seq_cst);\n")
        findings = self._findings("parity")
        self.assertEqual(len(findings), 1)
        self.assertIn("no adjacent C2SL_TEL_PRIM_", findings[0].message)

    def test_orphan_macro_fails(self):
        self.repo.write("src/runtime/q.h",
                        "void f() {\n"
                        "  C2SL_TEL_PRIM_TAS();\n"
                        "  plain_counter += 1;\n"
                        "}\n")
        findings = self._findings("parity")
        self.assertEqual(len(findings), 1)
        self.assertIn("no matching 'tas' RMW site", findings[0].message)

    def test_macro_kind_must_match_annotated_kind(self):
        self.repo.write("src/runtime/r.h",
                        "C2SL_TEL_PRIM_FAA();\n"
                        "// c2sl-atomic: swap seq_cst — deposit\n"
                        "int64_t prev = cell_.exchange(v, "
                        "std::memory_order_seq_cst);\n")
        findings = self._findings("parity")
        # The FAA macro cannot serve a swap site: both directions fire.
        self.assertEqual(len(findings), 2)

    def test_noprofile_flag_excuses_diag_counter(self):
        self.repo.write("src/runtime/s.h",
                        "// c2sl-atomic: faa relaxed noprofile — diagnostics\n"
                        "parks_.fetch_add(1, std::memory_order_relaxed);\n")
        self.assertEqual(self._findings("parity"), [])

    def test_noprofile_with_adjacent_macro_fails(self):
        self.repo.write("src/runtime/t.h",
                        "C2SL_TEL_PRIM_FAA();\n"
                        "// c2sl-atomic: faa seq_cst noprofile — contradictory\n"
                        "total_.fetch_add(1, std::memory_order_seq_cst);\n")
        findings = self._findings("parity")
        self.assertEqual(len(findings), 1)
        self.assertIn("drop the flag or the hook", findings[0].message)

    def test_profiled_rmw_passes_and_macro_define_is_exempt(self):
        self.repo.write("src/runtime/u.h",
                        "C2SL_TEL_PRIM_FAA();\n"
                        "// c2sl-atomic: faa seq_cst — linearization point\n"
                        "total_.fetch_add(1, std::memory_order_seq_cst);\n")
        self.repo.write("src/runtime/defs.h",
                        "#define MY_HOOKED_FAA(x) \\\n"
                        "  C2SL_TEL_PRIM_FAA()\n")
        self.assertEqual(self._findings("parity"), [])

    def test_telemetry_dir_is_outside_parity_scope(self):
        self.repo.write("src/telemetry/tel.h",
                        "// c2sl-atomic: faa seq_cst — digest add half\n"
                        "ops_total_.fetch_add(1, std::memory_order_seq_cst);\n")
        self.assertEqual(self._findings("parity"), [])


class ScannerDetailTest(unittest.TestCase):
    def test_enclosing_symbol_and_order_extraction(self):
        repo = TempRepo()
        try:
            path = repo.write(
                "src/runtime/sym.h",
                "namespace c2sl::rt {\n"
                "class HandoffQueue {\n"
                " public:\n"
                "  size_t enqueue() {\n"
                "    return tail_.fetch_add(1, std::memory_order_seq_cst);\n"
                "  }\n"
                "  int64_t peek() const {\n"
                "    return head_.load(std::memory_order::acquire);\n"
                "  }\n"
                "};\n"
                "}\n")
            sites, _, _, _, _ = scan_file(path, repo.root)
            self.assertEqual(
                [(s.symbol, s.op, s.order) for s in sites],
                [("c2sl::rt::HandoffQueue::enqueue", "fetch_add", "seq_cst"),
                 ("c2sl::rt::HandoffQueue::peek", "load", "acquire")])
        finally:
            repo.cleanup()

    def test_notify_has_na_order_and_wait_defaults_seq_cst(self):
        repo = TempRepo()
        try:
            path = repo.write(
                "src/runtime/w.h",
                "// c2sl-atomic: wait-notify seq_cst — park\n"
                "c.wait(kCellClaimed);\n"
                "// c2sl-atomic: wait-notify n/a — wake\n"
                "c.notify_one();\n")
            sites, _, _, _, _ = scan_file(path, repo.root)
            self.assertEqual([(s.op, s.order) for s in sites],
                             [("wait", "seq_cst"), ("notify_one", "n/a")])
        finally:
            repo.cleanup()


class RealTreeTest(unittest.TestCase):
    """The audit on the actual repository must be green (the CI gate)."""

    REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    def test_head_is_clean(self):
        inv = os.path.join(self.REPO, "tools", "atomics_inventory.json")
        findings, payload = rules.run_all(self.REPO, inv, write=False)
        self.assertEqual([str(f) for f in findings], [])
        self.assertGreater(payload["site_count"], 50)

    def test_inventory_has_no_unannotated_enforced_sites(self):
        with open(os.path.join(self.REPO, "tools",
                               "atomics_inventory.json"),
                  encoding="utf-8") as f:
            inv = json.load(f)
        self.assertEqual(inv["schema"], rules.INVENTORY_SCHEMA)
        for site in inv["sites"]:
            if any(site["file"].startswith(d + "/")
                   for d in rules.ANNOTATED_DIRS):
                self.assertIn("kind", site,
                              f"unannotated enforced site: {site}")

    def test_no_cas_identifiers_anywhere_outside_allowlist(self):
        scans_findings = rules.check_no_cas(
            __import__("c2sl_lint.scanner", fromlist=["scan_tree"])
            .scan_tree(self.REPO, rules.CAS_SCAN_DIRS))
        self.assertEqual([str(f) for f in scans_findings], [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
