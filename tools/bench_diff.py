#!/usr/bin/env python3
"""Compare two c2sl-bench-v1 artifacts and fail on regressions.

    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 0.15]
                        [--metrics throughput_ops_per_s,latency_ns.p50,...]
                        [--bench-filter REGEX | --bench-include NAMES
                         | --bench-exclude NAMES]

Trajectory mode — persist an artifact's gated metrics as one JSONL row per
bench entry, so the per-PR history spans more than one baseline snapshot
(ROADMAP "bench trajectory tracking" stretch):

    tools/bench_diff.py ARTIFACT.json --append-trajectory TRAJ.jsonl
                        [--label NAME] [--bench-filter REGEX]

Each appended line is {"label", "suite", "bench", "throughput_ops_per_s",
"latency_ns.p50", "latency_ns.p99"}. The checked-in history lives at
bench/baselines/trajectory/trajectory.jsonl; CI appends the current run's
artifacts to a copy and uploads it as a build artifact, so every PR's numbers
are durably retrievable even though absolute values only compare within one
host.

Entries are matched by their "bench" name; --bench-filter restricts the
comparison to entries whose name matches the (re.search) regex, so one
artifact pair can be gated at different thresholds per entry family (CI's
counter_sum scan-vs-digest gate requires improvement on '^mix/sum_heavy$'
and mere non-regression on '^mix/mixed$' from the same two runs). A filter
that matches no common entry is an error (exit 2), not a silent pass.

For exact-name selection prefer --bench-include / --bench-exclude: each takes
a comma-separated list of exact bench names (no regex), includes keeping only
the listed entries and excludes dropping them. They exist because "everything
except mix/session_churn and mix/resize_storm" as a regex needs a negative
lookahead — write `--bench-exclude mix/session_churn,mix/resize_storm`
instead. The three selectors are mutually exclusive. An include list naming
no common entry is an error (exit 2); an exclude list may legitimately drop
nothing (the names need not be present), but dropping EVERY common entry is
the same exit-2 error as a filter that matches nothing.

For every matched entry the tool compares (by default):
  * metrics.throughput_ops_per_s  — regression if current < baseline*(1-t)
  * metrics.latency_ns.p50 / p99  — regression if current > baseline*(1+t)

--metrics restricts which of those gate the exit code (the others are still
printed). On oversubscribed machines p99 of high-contention entries measures
preemption quanta, not code — gate on throughput_ops_per_s,latency_ns.p50
there.

A NEGATIVE --threshold flips the gate into an IMPROVEMENT requirement: with
--threshold=-0.5, current must beat baseline by at least 50% on every gated
metric or the diff fails. CI uses this for the flat-vs-segmented F&I read-path
ablation (bench_tas_family --impl=...): the O(value) -> O(log value) claim is
enforced as "segmented at least 1.5x flat", per run, on the same host.

Exit status: 0 when no matched metric regresses beyond the threshold, 1
otherwise (2 on malformed input). Entries present in only one artifact are
reported but do not fail the comparison (thread sweeps legitimately differ
across hosts with different core counts).

This is the ROADMAP "bench trajectory tracking" comparator; CI uses it to
gate that the key-bound-ref path (bind=cached) is no slower than the per-op
routing path (bind=per_op) in the same run, and to diff against a checked-in
baseline informationally (cross-machine variance makes that advisory).

No dependencies beyond the standard library.
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "c2sl-bench-v1":
        raise ValueError(f"{path}: schema is {doc.get('schema')!r}, want 'c2sl-bench-v1'")
    entries = {}
    for entry in doc.get("results", []):
        entries[entry["bench"]] = entry.get("metrics", {})
    if not entries:
        raise ValueError(f"{path}: no results")
    return entries


def metric(metrics, dotted):
    node = metrics
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


# (dotted path, direction): +1 means higher-is-better, -1 lower-is-better.
CHECKS = [
    ("throughput_ops_per_s", +1),
    ("latency_ns.p50", -1),
    ("latency_ns.p99", -1),
]


def make_selector(args):
    """Build a name -> bool predicate from the (exclusive) selection flags.

    Returns (selector, error): exactly one is None. Exact names are
    deliberately NOT regexes — they come from CI lines where an accidental
    metacharacter ('.', '+') silently widens a regex match.
    """
    chosen = [name for name, value in
              [("--bench-filter", args.bench_filter),
               ("--bench-include", args.bench_include),
               ("--bench-exclude", args.bench_exclude)] if value is not None]
    if len(chosen) > 1:
        return None, f"{' and '.join(chosen)} are mutually exclusive"
    if args.bench_filter is not None:
        try:
            pattern = re.compile(args.bench_filter)
        except re.error as e:
            return None, f"bad --bench-filter: {e}"
        return (lambda name: pattern.search(name) is not None), None
    if args.bench_include is not None:
        names = {n.strip() for n in args.bench_include.split(",") if n.strip()}
        if not names:
            return None, "--bench-include names no benches"
        return (lambda name: name in names), None
    if args.bench_exclude is not None:
        names = {n.strip() for n in args.bench_exclude.split(",") if n.strip()}
        if not names:
            return None, "--bench-exclude names no benches"
        return (lambda name: name not in names), None
    return (lambda name: True), None


def selection_note(args):
    for flag, value in [("--bench-filter", args.bench_filter),
                        ("--bench-include", args.bench_include),
                        ("--bench-exclude", args.bench_exclude)]:
        if value is not None:
            return f" ({flag} {value!r})"
    return ""


def append_trajectory(args, selector):
    """Append one JSONL row per (selected) bench entry of `args.baseline`."""
    try:
        with open(args.baseline) as f:
            doc = json.load(f)
        if doc.get("schema") != "c2sl-bench-v1":
            raise ValueError(f"{args.baseline}: schema is "
                             f"{doc.get('schema')!r}, want 'c2sl-bench-v1'")
        entries = doc.get("results", [])
        if not entries:
            raise ValueError(f"{args.baseline}: no results")
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2
    rows = []
    for entry in entries:
        if not selector(entry["bench"]):
            continue
        metrics = entry.get("metrics", {})
        row = {"label": args.label, "suite": doc.get("suite", ""),
               "bench": entry["bench"]}
        for path, _ in CHECKS:
            value = metric(metrics, path)
            if value is not None:
                row[path] = value
        rows.append(row)
    if not rows:
        print("bench_diff: no entries matched for the trajectory"
              + selection_note(args), file=sys.stderr)
        return 2
    with open(args.append_trajectory, "a") as out:
        for row in rows:
            out.write(json.dumps(row, sort_keys=True) + "\n")
    print(f"bench_diff: appended {len(rows)} trajectory row(s) "
          f"[label {args.label!r}] to {args.append_trajectory}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="?", default=None)
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative regression (default 0.15 = 15%%)")
    ap.add_argument("--metrics", default=None,
                    help="comma-separated subset of metrics that gate the exit "
                         "code (default: all known metrics)")
    ap.add_argument("--bench-filter", default=None, metavar="REGEX",
                    help="only compare entries whose bench name matches this "
                         "regex (re.search); no match is an error")
    ap.add_argument("--bench-include", default=None, metavar="NAMES",
                    help="comma-separated EXACT bench names to compare; "
                         "mutually exclusive with the other selectors")
    ap.add_argument("--bench-exclude", default=None, metavar="NAMES",
                    help="comma-separated EXACT bench names to drop; "
                         "mutually exclusive with the other selectors")
    ap.add_argument("--append-trajectory", default=None, metavar="JSONL",
                    help="append the (single) artifact's gated metrics to this "
                         "JSONL history instead of comparing two artifacts")
    ap.add_argument("--label", default="unlabelled",
                    help="row label for --append-trajectory (e.g. a PR or SHA)")
    args = ap.parse_args()
    selector, err = make_selector(args)
    if err is not None:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 2
    if args.append_trajectory is not None:
        if args.current is not None:
            print("bench_diff: --append-trajectory takes exactly one artifact",
                  file=sys.stderr)
            return 2
        return append_trajectory(args, selector)
    if args.current is None:
        print("bench_diff: comparison mode needs BASELINE and CURRENT",
              file=sys.stderr)
        return 2
    gating = (set(m.strip() for m in args.metrics.split(","))
              if args.metrics else {path for path, _ in CHECKS})
    unknown = gating - {path for path, _ in CHECKS}
    if unknown:
        print(f"bench_diff: unknown --metrics {sorted(unknown)}; "
              f"known: {[p for p, _ in CHECKS]}", file=sys.stderr)
        return 2

    try:
        base = load(args.baseline)
        curr = load(args.current)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2

    base = {k: v for k, v in base.items() if selector(k)}
    curr = {k: v for k, v in curr.items() if selector(k)}

    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))
    matched = sorted(set(base) & set(curr))
    if not matched:
        print("bench_diff: no common bench entries to compare"
              + selection_note(args), file=sys.stderr)
        return 2

    regressions = []
    print(f"{'bench':<34} {'metric':<22} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in matched:
        for path, direction in CHECKS:
            b = metric(base[name], path)
            c = metric(curr[name], path)
            if b is None or c is None:
                continue
            if b <= 0:
                continue  # can't compute a ratio; zero latencies happen on coarse clocks
            delta = (c - b) / b
            # A regression is slower throughput or higher latency.
            regressed = path in gating and (
                (direction > 0 and delta < -args.threshold) or
                (direction < 0 and delta > args.threshold))
            flag = "  REGRESSION" if regressed else ""
            print(f"{name:<34} {path:<22} {b:>12.0f} {c:>12.0f} {delta:>+7.1%}{flag}")
            if regressed:
                regressions.append((name, path, delta))

    for name in only_base:
        print(f"note: '{name}' only in baseline (skipped)")
    for name in only_curr:
        print(f"note: '{name}' only in current (skipped)")

    if regressions:
        print(f"\nbench_diff: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} threshold", file=sys.stderr)
        return 1
    print(f"\nbench_diff: ok ({len(matched)} entries within {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
