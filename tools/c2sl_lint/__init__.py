"""c2sl_lint — the no-CAS conformance linter behind tools/atomics_audit.py.

A small, dependency-free static analysis package for the repo's concurrency
surface:

  * tokenizer  — a real C++ lexer (comment / string / char / raw-string safe),
                 so identifier rules never fire on prose or string payloads;
  * scanner    — extracts every std::atomic operation site (fetch_add,
                 exchange, load, store, wait/notify, compare_exchange_*) with
                 its enclosing symbol, memory order, and adjacent
                 `// c2sl-atomic:` annotation;
  * rules      — the four CI-enforced rules: no-CAS outside the allowlist,
                 annotation presence + kind/order agreement, checked-in
                 inventory drift, and C2SL_TEL_PRIM_* profile-hook parity.

The package is imported by tools/atomics_audit.py (the CLI) and
tools/atomics_audit_test.py (the fixture suite, a ctest entry).
"""

from .tokenizer import Token, tokenize  # noqa: F401
from .scanner import AtomicSite, Annotation, scan_file, scan_tree  # noqa: F401
from .rules import (  # noqa: F401
    Finding,
    check_annotations,
    check_inventory,
    check_no_cas,
    check_profile_parity,
    inventory_payload,
    run_all,
)
