"""The four CI-enforced conformance rules.

Rule 1 — no-CAS: `compare_exchange_*` / `atomic_compare_exchange*` /
         `__sync_*compare*` identifiers (and inline asm, where a cmpxchg
         could hide inside a string the tokenizer cannot see) may appear only
         under the allowlist: src/baselines/** and src/primitives/swap_cas.h.
         Identifier-based, so aliasing the atomic object or wrapping the call
         in a macro cannot smuggle one in — the member name itself must
         appear somewhere in code tokens, and comments/strings never match.

Rule 2 — annotation audit: every atomic site under src/runtime/,
         src/service/ and src/telemetry/ must be covered by a
         `// c2sl-atomic: <kind> <order> — <rationale>` whose claimed kind is
         compatible with the operation in the code (faa ⇔ fetch_add,
         tas/swap ⇔ exchange, ...) and whose claimed order equals the memory
         order the code actually passes (C++ default seq_cst when absent).
         Annotations anywhere else are optional but validated when present.

Rule 3 — inventory drift: the machine-generated atomics inventory
         (tools/atomics_inventory.json) must match a fresh scan exactly;
         `atomics_audit.py --write` regenerates it, so any new/changed/moved
         site shows up as a reviewable diff of the concurrency surface.

Rule 4 — profile-hook parity: under src/runtime/ and src/service/, every
         RMW site must sit adjacent (≤ PARITY_WINDOW lines) to a matching
         C2SL_TEL_PRIM_{FAA,TAS,SWAP}() invocation — or carry the explicit
         `noprofile` flag with its rationale — and every such macro
         invocation must be adjacent to a matching RMW site. The paper's
         measured primitive cost model (telemetry/prim_profile.h) can then
         never silently under- or over-count.
"""

import json
import os
from dataclasses import dataclass

from .scanner import OP_TO_KINDS, RMW_OPS, scan_tree

INVENTORY_SCHEMA = "c2sl-atomics-v1"

# Directories scanned for the inventory (everything with real std::atomic).
INVENTORY_DIRS = ("src/runtime", "src/service", "src/telemetry", "src/util",
                  "src/workload")
# Directories where every site MUST be annotated (rule 2).
ANNOTATED_DIRS = ("src/runtime", "src/service", "src/telemetry")
# Directories where RMW sites and C2SL_TEL_PRIM_* must pair up (rule 4).
PARITY_DIRS = ("src/runtime", "src/service")
# Rule 1 scans everything under src/ except the allowlist.
CAS_SCAN_DIRS = ("src",)
CAS_ALLOWLIST_PREFIXES = ("src/baselines/",)
CAS_ALLOWLIST_FILES = ("src/primitives/swap_cas.h",)

# An RMW and its profile macro must be within this many lines.
PARITY_WINDOW = 3


@dataclass(frozen=True)
class Finding:
    rule: str    # "no-cas" | "annotation" | "inventory" | "parity"
    file: str
    line: int
    message: str

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


def _under(rel, dirs):
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


def _allowlisted(rel, prefixes=CAS_ALLOWLIST_PREFIXES,
                 files=CAS_ALLOWLIST_FILES):
    return rel in files or any(rel.startswith(p) for p in prefixes)


# --- rule 1 -----------------------------------------------------------------

def check_no_cas(scans, allow_prefixes=CAS_ALLOWLIST_PREFIXES,
                 allow_files=CAS_ALLOWLIST_FILES):
    findings = []
    for rel, (_sites, _anns, _macros, cas_hits, asm_hits) in scans.items():
        if _allowlisted(rel, allow_prefixes, allow_files):
            continue
        for line, ident in cas_hits:
            findings.append(Finding(
                "no-cas", rel, line,
                f"forbidden CAS identifier '{ident}' (consensus number ∞); "
                "only src/baselines/ and src/primitives/swap_cas.h may use "
                "compare&swap"))
        for line, ident in asm_hits:
            findings.append(Finding(
                "no-cas", rel, line,
                f"inline assembly ('{ident}') is forbidden outside the "
                "baselines: a cmpxchg inside an asm string is invisible to "
                "the atomics audit"))
    return findings


# --- rule 2 -----------------------------------------------------------------

def check_annotations(scans, annotated_dirs=ANNOTATED_DIRS):
    findings = []
    for rel, (sites, anns, _macros, _cas, _asm) in scans.items():
        must_annotate = _under(rel, annotated_dirs)
        for a in anns:
            for err in a.errors:
                findings.append(Finding("annotation", rel, a.line, err))
            if a.consumed < len(a.pairs):
                findings.append(Finding(
                    "annotation", rel, a.line,
                    f"annotation lists {len(a.pairs)} site(s) but only "
                    f"{a.consumed} matched an atomic operation nearby"))
        for s in sites:
            allowed = OP_TO_KINDS.get(s.op)
            if allowed is None:
                findings.append(Finding(
                    "annotation", rel, s.line,
                    f"atomic op '{s.op}' is outside the consensus-2 toolbox "
                    "(only fetch_add / exchange / load / store / wait-notify "
                    "are allowed on decision paths)"))
                continue
            if not s.kind:
                if must_annotate:
                    findings.append(Finding(
                        "annotation", rel, s.line,
                        f"atomic site '{s.op}' in {s.symbol or '<file scope>'} "
                        "has no covering c2sl-atomic annotation "
                        "(grammar: // c2sl-atomic: <kind> <order> — <why>)"))
                continue
            if s.kind not in allowed:
                findings.append(Finding(
                    "annotation", rel, s.line,
                    f"annotation claims kind '{s.kind}' but the code performs "
                    f"'{s.op}' (allowed kinds: {', '.join(allowed)})"))
            if s.ann_order != s.order:
                findings.append(Finding(
                    "annotation", rel, s.line,
                    f"annotation claims memory order '{s.ann_order}' but the "
                    f"code uses '{s.order}'"))
    return findings


# --- rule 3 -----------------------------------------------------------------

def inventory_payload(scans, inventory_dirs=INVENTORY_DIRS):
    """The canonical, diff-reviewable inventory document."""
    entries = []
    for rel, (sites, _anns, _macros, _cas, _asm) in sorted(scans.items()):
        if not _under(rel, inventory_dirs):
            continue
        for s in sorted(sites, key=lambda s: (s.line, s.col)):
            entry = {
                "file": s.file,
                "line": s.line,
                "symbol": s.symbol,
                "op": s.op,
                "order": s.order,
            }
            if s.kind:
                entry["kind"] = s.kind
                entry["rationale"] = s.rationale
                if s.noprofile:
                    entry["noprofile"] = True
            entries.append(entry)
    by_kind = {}
    by_order = {}
    for e in entries:
        by_kind[e.get("kind", "unannotated")] = \
            by_kind.get(e.get("kind", "unannotated"), 0) + 1
        by_order[e["order"]] = by_order.get(e["order"], 0) + 1
    return {
        "schema": INVENTORY_SCHEMA,
        "site_count": len(entries),
        "sites_by_kind": dict(sorted(by_kind.items())),
        "sites_by_order": dict(sorted(by_order.items())),
        "sites": entries,
    }


def check_inventory(fresh_payload, inventory_path):
    if not os.path.exists(inventory_path):
        return [Finding(
            "inventory", os.path.basename(inventory_path), 0,
            "checked-in inventory missing; run atomics_audit.py --write")]
    with open(inventory_path, encoding="utf-8") as f:
        try:
            on_disk = json.load(f)
        except json.JSONDecodeError as e:
            return [Finding("inventory", os.path.basename(inventory_path), 0,
                            f"inventory is not valid JSON: {e}")]
    if on_disk == fresh_payload:
        return []
    findings = []
    old_sites = {(s["file"], s["line"], s["op"]): s
                 for s in on_disk.get("sites", [])}
    new_sites = {(s["file"], s["line"], s["op"]): s
                 for s in fresh_payload["sites"]}
    for key in sorted(set(new_sites) - set(old_sites)):
        findings.append(Finding(
            "inventory", key[0], key[1],
            f"site '{key[2]}' is not in the checked-in inventory"))
    for key in sorted(set(old_sites) - set(new_sites)):
        findings.append(Finding(
            "inventory", key[0], key[1],
            f"inventory lists a site '{key[2]}' that no longer exists"))
    for key in sorted(set(old_sites) & set(new_sites)):
        if old_sites[key] != new_sites[key]:
            findings.append(Finding(
                "inventory", key[0], key[1],
                f"site '{key[2]}' changed (kind/order/symbol/rationale)"))
    if not findings:  # e.g. counts or ordering drifted
        findings.append(Finding(
            "inventory", os.path.basename(inventory_path), 0,
            "inventory metadata is stale"))
    findings.append(Finding(
        "inventory", os.path.basename(inventory_path), 0,
        "concurrency surface changed: regenerate with "
        "`python3 tools/atomics_audit.py --write` and review the diff"))
    return findings


# --- rule 4 -----------------------------------------------------------------

def check_profile_parity(scans, parity_dirs=PARITY_DIRS,
                         window=PARITY_WINDOW):
    findings = []
    for rel, (sites, _anns, macros, _cas, _asm) in scans.items():
        if not _under(rel, parity_dirs):
            continue
        rmws = [s for s in sites if s.op in RMW_OPS]
        live_macros = [m for m in macros if not m.in_define]
        claimed = set()

        def macro_for(site):
            # The annotated kind names the macro; an unannotated exchange
            # accepts either TAS or SWAP (rule 2 separately demands the
            # annotation in these dirs).
            want = {site.kind} if site.kind else set(OP_TO_KINDS[site.op])
            for idx, m in enumerate(live_macros):
                if idx in claimed or m.kind not in want:
                    continue
                if site.line - window <= m.line <= site.line:
                    claimed.add(idx)
                    return m
            return None

        for s in sorted(rmws, key=lambda s: (s.line, s.col)):
            if s.op not in OP_TO_KINDS:
                continue  # outside the toolbox: rule 2 already fails the build
            if s.op == "compare_exchange":
                continue  # rule 1 already fails the build
            m = macro_for(s)
            if m is None and not s.noprofile:
                findings.append(Finding(
                    "parity", rel, s.line,
                    f"RMW site '{s.op}' has no adjacent C2SL_TEL_PRIM_* hook "
                    f"(within {window} lines above) and is not flagged "
                    "noprofile — the measured primitive cost model would "
                    "under-count"))
            elif m is not None and s.noprofile:
                findings.append(Finding(
                    "parity", rel, s.line,
                    f"RMW site '{s.op}' is flagged noprofile but a "
                    f"C2SL_TEL_PRIM_{m.kind.upper()}() hook sits adjacent on "
                    f"line {m.line} — drop the flag or the hook"))
        for idx, m in enumerate(live_macros):
            if idx in claimed:
                continue
            findings.append(Finding(
                "parity", rel, m.line,
                f"C2SL_TEL_PRIM_{m.kind.upper()}() has no matching "
                f"'{m.kind}' RMW site within {window} lines below — the "
                "measured primitive cost model would over-count"))
    return findings


# --- driver -----------------------------------------------------------------

def run_all(root, inventory_path, write=False):
    """Runs every rule. Returns (findings, fresh_inventory_payload)."""
    scans = scan_tree(root, CAS_SCAN_DIRS)
    findings = []
    findings += check_no_cas(scans)
    findings += check_annotations(scans)
    findings += check_profile_parity(scans)
    payload = inventory_payload(scans)
    if write:
        with open(inventory_path, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=1)
            f.write("\n")
    else:
        findings += check_inventory(payload, inventory_path)
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    return findings, payload
