"""Atomic-site extraction over the token stream.

A *site* is one operation on a std::atomic object: a member call
`x.load(...)`, `x->fetch_add(...)`, `x.exchange(...)`, `x.wait(...)`,
`x.notify_one()`, or a `compare_exchange_*` / free-function CAS. For each
site the scanner records:

  * file / line / enclosing symbol (namespace::Class::method, best effort via
    a brace-matching scope tracker — exact for this codebase's style);
  * the operation name and the memory order actually passed (C++ default
    `seq_cst` when the argument list carries no `std::memory_order_*`);
  * the `// c2sl-atomic:` annotation that covers it, if any.

Annotation grammar (docs/ARCHITECTURE.md "Atomics inventory"):

    // c2sl-atomic: <kind> <order> [noprofile][, <kind> <order> ...] — <why>

  kind  ∈ faa | tas | swap | cas | load | store | wait-notify
  order ∈ relaxed | acquire | release | acq_rel | seq_cst | n/a

One annotation lists one pair per covered site; sites consume pairs in source
order. An annotation covers sites on its own line (trailing form) or on the
lines just below it (leading form, within ANNOTATION_WINDOW lines) — so a
multi-line statement can carry one leading annotation listing every site.
"""

import os
import re
from dataclasses import dataclass, field

from .tokenizer import tokenize

# Member calls that constitute an atomic site, and the code-level op each is.
ATOMIC_MEMBER_OPS = {
    "fetch_add": "fetch_add",
    "fetch_sub": "fetch_sub",
    "fetch_and": "fetch_and",
    "fetch_or": "fetch_or",
    "fetch_xor": "fetch_xor",
    "exchange": "exchange",
    "compare_exchange_weak": "compare_exchange",
    "compare_exchange_strong": "compare_exchange",
    "load": "load",
    "store": "store",
    "wait": "wait",
    "notify_one": "notify_one",
    "notify_all": "notify_all",
}

# Free functions that are CAS no matter how the object is reached.
CAS_FREE_FUNCTIONS = frozenset((
    "atomic_compare_exchange_weak",
    "atomic_compare_exchange_strong",
    "atomic_compare_exchange_weak_explicit",
    "atomic_compare_exchange_strong_explicit",
))

# Identifier fragments that are forbidden outside the allowlist regardless of
# syntactic shape (aliases and macros cannot hide the member name itself).
CAS_IDENTIFIERS = frozenset((
    "compare_exchange_weak", "compare_exchange_strong",
)) | CAS_FREE_FUNCTIONS | frozenset((
    "__sync_val_compare_and_swap", "__sync_bool_compare_and_swap",
))
CAS_SUBSTRINGS = ("cmpxchg",)  # inline-asm mnemonics smuggled as identifiers

# Code op -> annotation kinds that may claim it.
OP_TO_KINDS = {
    "fetch_add": ("faa",),
    "exchange": ("tas", "swap"),
    "compare_exchange": ("cas",),
    "load": ("load",),
    "store": ("store",),
    "wait": ("wait-notify",),
    "notify_one": ("wait-notify",),
    "notify_all": ("wait-notify",),
}

RMW_OPS = frozenset(("fetch_add", "fetch_sub", "fetch_and", "fetch_or",
                     "fetch_xor", "exchange", "compare_exchange"))

MEMORY_ORDERS = frozenset((
    "relaxed", "acquire", "release", "acq_rel", "seq_cst", "consume"))

KINDS = frozenset(("faa", "tas", "swap", "cas", "load", "store",
                   "wait-notify"))

# A leading annotation covers sites up to this many lines below it.
ANNOTATION_WINDOW = 6

ANNOTATION_RE = re.compile(r"c2sl-atomic:\s*(.*)$")

# Simulated primitives (src/core, src/primitives, sim_bridge) thread a
# sim::Ctx& as the FIRST argument of every operation; hardware std::atomic
# member calls never do. `x.fetch_add(ctx, 1)` is a sim step, not an atomic
# site.
SIM_CTX_ARG = "ctx"

# Control-flow keywords never name a scope even though they precede a '('.
CONTROL_KEYWORDS = frozenset((
    "for", "if", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignof", "decltype", "noexcept", "static_assert", "assert",
    "defined"))

PRIM_MACROS = {
    "C2SL_TEL_PRIM_FAA": "faa",
    "C2SL_TEL_PRIM_TAS": "tas",
    "C2SL_TEL_PRIM_SWAP": "swap",
}


@dataclass
class AtomicSite:
    file: str          # repo-relative, forward slashes
    line: int
    col: int
    symbol: str        # enclosing namespace::Class::method
    op: str            # code-level op: fetch_add | exchange | load | ...
    order: str         # memory order in the code: relaxed ... seq_cst | n/a
    kind: str = ""     # annotated kind ("" = unannotated)
    ann_order: str = ""
    noprofile: bool = False
    rationale: str = ""
    ann_line: int = 0  # line of the covering annotation (0 = none)


@dataclass
class Annotation:
    file: str
    line: int
    trailing: bool
    pairs: list        # [(kind, order, noprofile), ...]
    rationale: str
    consumed: int = 0
    errors: list = field(default_factory=list)


@dataclass
class PrimMacro:
    file: str
    line: int
    kind: str          # faa | tas | swap
    in_define: bool    # the macro's own #define line (not a call site)


def parse_annotation(comment_text):
    """Parses one `c2sl-atomic:` comment body. Returns (pairs, rationale,
    errors); pairs is [] when the comment is not an annotation at all."""
    m = ANNOTATION_RE.search(comment_text)
    if not m:
        return None
    body = m.group(1)
    # Rationale separator: em-dash or a double hyphen.
    rationale = ""
    for sep in ("—", "--"):
        if sep in body:
            body, rationale = body.split(sep, 1)
            rationale = rationale.strip()
            break
    errors = []
    if not rationale:
        errors.append("annotation has no rationale (need `— <why>`)")
    pairs = []
    for clause in body.split(","):
        words = clause.split()
        if not words:
            continue
        kind = words[0]
        order = words[1] if len(words) > 1 else ""
        flags = words[2:]
        if kind not in KINDS:
            errors.append(f"unknown kind '{kind}'")
        if order not in MEMORY_ORDERS and order != "n/a":
            errors.append(f"unknown memory order '{order}'")
        noprofile = False
        for f in flags:
            if f == "noprofile":
                noprofile = True
            else:
                errors.append(f"unknown flag '{f}'")
        pairs.append((kind, order, noprofile))
    if not pairs:
        errors.append("annotation lists no <kind> <order> pairs")
    return pairs, rationale, errors


class _ScopeTracker:
    """Brace-matching enclosing-symbol tracker.

    Tracks namespace / class / struct / enum scopes by name and function
    scopes by the identifier that precedes the parameter list. Heuristic, but
    exact for this codebase's formatting; fixtures in atomics_audit_test.py
    pin the behaviour the audit relies on.
    """

    def __init__(self):
        self.stack = []          # (name or "", is_named)
        self.pending_scope = ""  # name announced by class/struct/namespace
        self.last_call = ""      # identifier before the most recent '(' chain
        self.paren_depth = 0

    def symbol(self):
        return "::".join(s for s, named in self.stack if named and s)

    def feed(self, tokens):
        """Yields (index, token) while maintaining scope state; the caller
        inspects `symbol()` at interesting tokens."""
        i = 0
        n = len(tokens)
        prev_ident = ""
        while i < n:
            t = tokens[i]
            if t.kind == "ident":
                if t.text in ("class", "struct", "namespace", "enum", "union"):
                    # First identifier (skipping attributes / alignas(...) /
                    # access keywords) names the scope — unless a ';' lands
                    # first (fwd declaration, handled by the ';' case below).
                    j = i + 1
                    name = ""
                    while j < n and tokens[j].text not in ("{", ";"):
                        tj = tokens[j]
                        if tj.text == "(":  # alignas(64), attributes
                            depth = 1
                            j += 1
                            while j < n and depth:
                                if tokens[j].text == "(":
                                    depth += 1
                                elif tokens[j].text == ")":
                                    depth -= 1
                                j += 1
                            continue
                        if tj.kind == "ident" and tj.text not in (
                                "alignas", "final", "public", "private",
                                "protected", "class", "inline", "constexpr"):
                            name = tj.text
                            # nested-namespace definition: namespace a::b {
                            while j + 2 < n and tokens[j + 1].text == "::" \
                                    and tokens[j + 2].kind == "ident":
                                name += "::" + tokens[j + 2].text
                                j += 2
                            break
                        j += 1
                    self.pending_scope = name
                prev_ident = t.text
            elif t.text == "(":
                if self.paren_depth == 0 and prev_ident:
                    if prev_ident in CONTROL_KEYWORDS:
                        self.last_call = ""
                    elif not self.last_call:
                        # Keep the FIRST call of the statement: a constructor
                        # init-list (`Foo() : a_(x), b_(y) {`) must not let
                        # the member initializers steal the function name.
                        # Prepend `X::`-qualifiers for out-of-line methods.
                        name = prev_ident
                        if i >= 1 and tokens[i - 1].kind == "ident":
                            k = i - 1  # token holding prev_ident
                            if k >= 1 and tokens[k - 1].text == "~":
                                name = "~" + name
                                k -= 1
                            while k >= 2 and tokens[k - 1].text == "::" and \
                                    tokens[k - 2].kind == "ident":
                                name = tokens[k - 2].text + "::" + name
                                k -= 2
                        self.last_call = name
                self.paren_depth += 1
            elif t.text == ")":
                self.paren_depth = max(0, self.paren_depth - 1)
            elif t.text == "{":
                if self.paren_depth > 0:
                    # Brace inside an argument list (lambda / init-list):
                    # treat as anonymous.
                    self.stack.append(("", False))
                elif self.pending_scope:
                    self.stack.append((self.pending_scope, True))
                    self.pending_scope = ""
                elif self.last_call:
                    self.stack.append((self.last_call, True))
                    self.last_call = ""
                else:
                    self.stack.append(("", False))
            elif t.text == "}":
                if self.stack:
                    self.stack.pop()
            elif t.text == ";":
                self.pending_scope = ""
                if self.paren_depth == 0:
                    self.last_call = ""
            yield i, t
            i += 1


def _extract_order(tokens, open_paren_idx):
    """Memory order passed inside the balanced parens starting at
    open_paren_idx; C++ defaults to seq_cst when absent."""
    depth = 0
    i = open_paren_idx
    n = len(tokens)
    order = None
    while i < n:
        t = tokens[i]
        if t.text == "(":
            depth += 1
        elif t.text == ")":
            depth -= 1
            if depth == 0:
                break
        elif t.kind == "ident" and t.text.startswith("memory_order"):
            # std::memory_order_seq_cst or std::memory_order::seq_cst
            if t.text == "memory_order" and i + 2 < n and \
                    tokens[i + 1].text == "::":
                order = tokens[i + 2].text
            elif t.text.startswith("memory_order_"):
                order = t.text[len("memory_order_"):]
        i += 1
    if order is not None:
        return order
    return "seq_cst"


def scan_file(path, repo_root, text=None):
    """Scans one C++ file. Returns (sites, annotations, prim_macros,
    cas_hits, asm_hits) — cas/asm hits as (line, identifier) pairs."""
    if text is None:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
    tokens, comments = tokenize(text)

    sites = []
    prim_macros = []
    cas_hits = []
    asm_hits = []

    # Which lines belong to a #define (macro call-sites vs the definition).
    define_lines = set()
    for mline in re.finditer(
            r"^[ \t]*#[ \t]*define\b(?:[^\n]*\\\n)*[^\n]*",
            text, re.MULTILINE):
        start = text.count("\n", 0, mline.start()) + 1
        end = start + mline.group(0).count("\n")
        define_lines.update(range(start, end + 1))

    tracker = _ScopeTracker()
    toks = tokens
    n = len(toks)
    for i, t in tracker.feed(toks):
        if t.kind != "ident":
            continue
        text_t = t.text
        # --- rule-1 raw material: CAS / asm identifiers anywhere in code ----
        if text_t in CAS_IDENTIFIERS or any(s in text_t.lower()
                                            for s in CAS_SUBSTRINGS):
            cas_hits.append((t.line, text_t))
        if text_t in ("asm", "__asm", "__asm__"):
            asm_hits.append((t.line, text_t))
        # --- profile macros -------------------------------------------------
        if text_t in PRIM_MACROS:
            prim_macros.append(PrimMacro(rel, t.line, PRIM_MACROS[text_t],
                                         t.line in define_lines))
        # --- atomic member calls -------------------------------------------
        if text_t in ATOMIC_MEMBER_OPS:
            prev = toks[i - 1] if i > 0 else None
            nxt = toks[i + 1] if i + 1 < n else None
            is_member = prev is not None and prev.text in (".", "->")
            is_call = nxt is not None and nxt.text == "("
            if not (is_member and is_call):
                # Free-function CAS is caught by the identifier rule above;
                # declarations / unrelated identifiers are not sites.
                continue
            # Simulated primitives take sim::Ctx& first: x.fetch_add(ctx, 1)
            # is a sim step on a model object, not a hardware atomic. Only
            # fetch_add collides with the sim op vocabulary (read / write /
            # swap otherwise), so the exclusion is scoped to it — a real
            # atomic's delta argument is never the sim context.
            if text_t == "fetch_add" and i + 2 < n and \
                    toks[i + 2].kind == "ident" and \
                    toks[i + 2].text == SIM_CTX_ARG and i + 3 < n and \
                    toks[i + 3].text in (",", ")"):
                continue
            op = ATOMIC_MEMBER_OPS[text_t]
            if op in ("notify_one", "notify_all"):
                order = "n/a"
            else:
                order = _extract_order(toks, i + 1)
            sites.append(AtomicSite(
                file=rel, line=t.line, col=t.col,
                symbol=tracker.symbol(), op=op, order=order))

    # --- annotations --------------------------------------------------------
    annotations = []
    for c in comments:
        parsed = parse_annotation(c.text)
        if parsed is None:
            continue
        pairs, rationale, errors = parsed
        annotations.append(Annotation(rel, c.line, c.trailing, pairs,
                                      rationale, errors=list(errors)))

    _bind_annotations(sites, annotations)
    return sites, annotations, prim_macros, cas_hits, asm_hits


def _bind_annotations(sites, annotations):
    """Sites consume annotation pairs in source order.

    A trailing annotation covers sites on its own line; a leading annotation
    covers sites strictly below it within ANNOTATION_WINDOW lines. Binding is
    greedy and ordered, so one leading annotation can cover a multi-line
    statement by listing one pair per site.
    """
    anns = sorted(annotations, key=lambda a: a.line)
    sites_sorted = sorted(sites, key=lambda s: (s.line, s.col))
    ai = 0
    active = []  # annotations whose window is open
    for s in sites_sorted:
        while ai < len(anns) and anns[ai].line <= s.line:
            active.append(anns[ai])
            ai += 1
        chosen = None
        for a in reversed(active):  # nearest annotation first
            if a.consumed >= len(a.pairs):
                continue
            if a.trailing:
                if a.line == s.line:
                    chosen = a
                    break
            elif a.line <= s.line <= a.line + ANNOTATION_WINDOW:
                chosen = a
                break
        if chosen is None:
            continue
        kind, order, noprofile = chosen.pairs[chosen.consumed]
        chosen.consumed += 1
        s.kind = kind
        s.ann_order = order
        s.noprofile = noprofile
        s.rationale = chosen.rationale
        s.ann_line = chosen.line


def iter_cpp_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".h", ".hpp", ".cpp", ".cc", ".cxx")):
                    yield os.path.join(dirpath, name)


def scan_tree(root, subdirs):
    """Scans every C++ file under root/<subdir> for each subdir. Returns a
    dict: file -> scan_file() tuple, ordered by path."""
    out = {}
    for path in sorted(iter_cpp_files(root, subdirs)):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        out[rel] = scan_file(path, root)
    return out
