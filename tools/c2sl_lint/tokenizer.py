"""A comment/string/raw-string-safe C++ tokenizer.

The linter's rules are identifier rules ("no `compare_exchange_*` token
outside the allowlist", "this `.exchange(` call's memory order is ...").
Running them on raw text would fire on prose in comments, on string payloads,
and on raw-string literals — precisely the false positives a grep-based check
cannot avoid. This lexer does the minimal honest job instead:

  * line comments (`//...`), block comments (`/*...*/`), ordinary string and
    character literals (with escape handling), and raw strings
    (`R"delim(...)delim"`, any delimiter) are consumed as single units and
    NEVER produce identifier tokens;
  * comments are retained (with line numbers) on a side channel, because the
    `// c2sl-atomic:` annotations the audit enforces live there;
  * everything else becomes (kind, text, line, col) tokens: identifiers,
    numbers, and punctuation. Preprocessor lines are tokenized like code
    (a CAS hidden in a macro body must still be caught) with line
    continuations honoured.

No external dependencies; the grammar subset is exactly what the rules need.
"""

from dataclasses import dataclass

IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
IDENT_CONT = IDENT_START | frozenset("0123456789")

# Multi-char punctuators the scanner cares about (`->` for member calls,
# `::` for qualified names). Everything else can split into single chars.
PUNCT2 = ("->", "::")


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "punct"
    text: str
    line: int  # 1-based
    col: int   # 0-based


@dataclass(frozen=True)
class Comment:
    text: str       # comment body, delimiters stripped
    line: int       # line the comment STARTS on
    end_line: int   # line the comment ends on (== line for `//`)
    trailing: bool  # True when code tokens precede it on its start line


RAW_PREFIXES = frozenset(("R", "uR", "UR", "LR", "u8R"))


def tokenize(src):
    """Tokenizes C++ source. Returns (tokens, comments)."""
    tokens = []
    comments = []
    line_has_code = {}  # line -> True once a code token landed there

    i = 0
    n = len(src)
    line = 1
    col = 0

    def advance_over(text):
        nonlocal line, col
        for ch in text:
            if ch == "\n":
                line += 1
                col = 0
            else:
                col += 1

    while i < n:
        ch = src[i]

        if ch == "\n":
            line += 1
            col = 0
            i += 1
            continue
        if ch in " \t\r\f\v":
            col += 1
            i += 1
            continue
        # Line continuation: backslash-newline glues lines (macro bodies).
        if ch == "\\" and i + 1 < n and src[i + 1] == "\n":
            line += 1
            col = 0
            i += 2
            continue

        # Comments.
        if ch == "/" and i + 1 < n and src[i + 1] == "/":
            j = src.find("\n", i)
            if j < 0:
                j = n
            body = src[i + 2:j]
            comments.append(Comment(body.strip(), line, line,
                                    bool(line_has_code.get(line))))
            col += j - i
            i = j
            continue
        if ch == "/" and i + 1 < n and src[i + 1] == "*":
            j = src.find("*/", i + 2)
            if j < 0:
                j = n
                end = n
            else:
                end = j + 2
            body = src[i + 2:j]
            start_line = line
            advance_over(src[i:end])
            comments.append(Comment(body.strip(), start_line, line,
                                    bool(line_has_code.get(start_line))))
            i = end
            continue

        # Raw strings: R"delim( ... )delim" (prefix R/uR/UR/LR/u8R was just
        # emitted as an identifier token immediately before this quote).
        if ch == '"':
            raw = (tokens and tokens[-1].kind == "ident"
                   and tokens[-1].text in RAW_PREFIXES
                   and tokens[-1].line == line
                   and tokens[-1].col + len(tokens[-1].text) == col)
            if raw:
                tokens.pop()  # the prefix is part of the literal, not code
                close = src.find("(", i + 1)
                if close < 0:
                    advance_over(src[i:])
                    i = n
                    continue
                delim = src[i + 1:close]
                terminator = ")" + delim + '"'
                j = src.find(terminator, close + 1)
                end = n if j < 0 else j + len(terminator)
                advance_over(src[i:end])
                i = end
                continue
            # Ordinary string literal.
            j = i + 1
            while j < n and src[j] != '"':
                if src[j] == "\\":
                    j += 1
                j += 1
            end = min(j + 1, n)
            advance_over(src[i:end])
            i = end
            continue
        if ch == "'":
            j = i + 1
            while j < n and src[j] != "'":
                if src[j] == "\\":
                    j += 1
                j += 1
            end = min(j + 1, n)
            advance_over(src[i:end])
            i = end
            continue

        # Identifiers / keywords.
        if ch in IDENT_START:
            j = i
            while j < n and src[j] in IDENT_CONT:
                j += 1
            tokens.append(Token("ident", src[i:j], line, col))
            line_has_code[line] = True
            col += j - i
            i = j
            continue

        # Numbers (good enough: digits + number-ish continuation chars,
        # including C++14 digit separators so 1'000 never opens a char
        # literal).
        if ch.isdigit():
            j = i
            while j < n and (src[j] in IDENT_CONT or src[j] == "."
                             or (src[j] in "+-" and src[j - 1] in "eEpP")
                             or (src[j] == "'" and j + 1 < n
                                 and src[j + 1] in IDENT_CONT)):
                j += 1
            tokens.append(Token("number", src[i:j], line, col))
            line_has_code[line] = True
            col += j - i
            i = j
            continue

        # Punctuation.
        two = src[i:i + 2]
        if two in PUNCT2:
            tokens.append(Token("punct", two, line, col))
            line_has_code[line] = True
            col += 2
            i += 2
            continue
        tokens.append(Token("punct", ch, line, col))
        line_has_code[line] = True
        col += 1
        i += 1

    return tokens, comments
