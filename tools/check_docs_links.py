#!/usr/bin/env python3
"""Fail if docs/ (or README.md) reference files or links that do not exist.

    tools/check_docs_links.py [--root REPO_ROOT]

Two classes of references are checked in every markdown file under docs/ plus
README.md:

  * relative markdown links: [text](path) and [text](path#anchor) — the path,
    resolved against the containing file's directory, must exist (http(s):,
    mailto: and pure-anchor links are skipped);
  * backticked repo paths: `src/...`, `tests/...`, `bench/...`, `tools/...`,
    `examples/...`, `docs/...`, `.github/...` — the named file or directory
    must exist (a trailing ":<line>" or "#anchor" is stripped; a `.{h,cpp}`
    brace-pair like `service/lane_registry.{h,cpp}` expands to both files).

Prose that names a code path which has since moved is exactly how docs rot;
this runs in CI so a rename that orphans documentation fails the build
instead of silently shipping stale docs. No dependencies beyond the standard
library; exit 0 = clean, 1 = stale references (each printed), 2 = bad usage.
"""

import argparse
import os
import re
import sys

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")
REPO_PATH = re.compile(
    r"^(?:src|tests|bench|tools|examples|docs|\.github)/[A-Za-z0-9_./{},-]+$")


def expand_braces(token):
    """service/x.{h,cpp} -> [service/x.h, service/x.cpp]; no braces -> [token]."""
    m = re.match(r"^(.*)\{([^}]*)\}(.*)$", token)
    if not m:
        return [token]
    return [m.group(1) + alt + m.group(3) for alt in m.group(2).split(",")]


def check_file(md_path, root):
    problems = []
    text = open(md_path, encoding="utf-8").read()
    base = os.path.dirname(md_path)

    for target in MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            problems.append(f"{md_path}: broken link -> {target}")

    for token in BACKTICK.findall(text):
        token = token.strip().split("#", 1)[0]
        token = re.sub(r":\d+$", "", token)  # `src/foo.h:42` -> `src/foo.h`
        if not REPO_PATH.match(token):
            continue
        for candidate in expand_braces(token):
            if not os.path.exists(os.path.join(root, candidate)):
                problems.append(f"{md_path}: stale path reference `{candidate}`")

    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    args = ap.parse_args()

    targets = [os.path.join(args.root, "README.md")]
    docs_dir = os.path.join(args.root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                targets.append(os.path.join(docs_dir, name))
    targets = [t for t in targets if os.path.exists(t)]
    if not targets:
        print("check_docs_links: nothing to check (no README.md or docs/)",
              file=sys.stderr)
        return 2

    problems = []
    for md in targets:
        problems.extend(check_file(md, args.root))

    for p in problems:
        print(p)
    if problems:
        print(f"check_docs_links: {len(problems)} stale reference(s) in "
              f"{len(targets)} file(s)", file=sys.stderr)
        return 1
    print(f"check_docs_links: ok ({len(targets)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
