#!/usr/bin/env python3
"""Validate c2sl-metrics-v1 snapshots and diff two of them.

    tools/metrics_diff.py SNAPSHOT.json                 # validate only
    tools/metrics_diff.py BASELINE.json CURRENT.json    # validate + diff

Validation checks the snapshot's structural invariants, not just its shape:

  * schema == "c2sl-metrics-v1", source present, telemetry_enabled boolean.
  * op_counts covers every known op kind with non-negative integers.
  * ops_total (the strongly linearizable digest read) >= 0; on a QUIESCED
    snapshot — every producer writes them after its workers joined — the racy
    lane scan must agree: ops_total == ops_total_scan. --in-flight relaxes
    that to scan <= total (writers between their lane cell and digest steps).
  * every histogram is internally consistent: bucket uppers strictly
    increasing, counts non-negative, reported count == sum of buckets, and
    quantile upper bounds monotone in q (p50 <= p90 <= p99 <= max).
  * session counters are non-negative and obey the handoff-queue accounting
    the stress tests bound: deliveries <= enqueued, revocations <= enqueued.
  * prim_profile rows (if present) have non-negative averages and ops > 0.
  * events obey the routing-epoch spine's accounting: epochs_published <=
    resize_claims (every publish follows a successful one-shot claim;
    poisoned or abandoned claims never publish). Under --gate-monotone the
    diff additionally requires migrated_keys not to go backwards — migration
    only ever copies state forward into child shards.

A disabled-build snapshot (telemetry_enabled == false) is VALID — it just has
nothing to diff; diffing one exits 0 with a note (so the CI smoke invocation
works on both flavours).

Diff mode prints per-counter deltas (current - baseline) for op_counts, the
digest/scan pair, session counters and events, plus histogram drift (count
delta and p50/p99 upper-bound movement) for op latencies and open_wait.
Counters in a metrics snapshot are cumulative per process run, not per store
lifetime, so a NEGATIVE delta between two runs of the same workload flags a
lost-update bug in the telemetry layer: --gate-monotone turns any negative
op-count delta into exit 1 (CI's smoke uses it on two runs of the same bench
configuration; absolute values differ, directions must not).

Exit status: 0 valid (and gates pass), 1 a gate failed, 2 malformed input.
No dependencies beyond the standard library.
"""

import argparse
import json
import sys

OP_KINDS = [
    "max_write", "max_read", "counter_inc", "counter_read",
    "tas_set", "tas_read", "tas_reset", "set_put", "set_take",
    "global_max", "global_max_scan", "counter_sum", "counter_sum_scan",
    "snapshot", "transfer", "session_open",
]

EVENT_KINDS = [
    "segment_claims", "segment_publishes", "shard_inits",
    "resize_claims", "epochs_published", "migrated_keys",
]

# Events that may only grow between two runs of one workload configuration
# under --gate-monotone. Deliberately NOT every event: claim counters
# (segment_claims, resize_claims) count racy ATTEMPTS, so two runs of the
# same workload can legitimately land on either side of each other. A key,
# once migrated into a child shard, is never un-migrated — that direction is
# part of the epoch hand-off's monotonicity argument (docs/PROOFS.md).
MONOTONE_EVENTS = {"migrated_keys"}

SESSION_KEYS = [
    "lane_tickets", "handoff_enqueued", "handoff_deliveries",
    "handoff_parks", "handoff_revocations", "lane_counter_adds",
]


class Invalid(ValueError):
    pass


def _require(cond, path, msg):
    if not cond:
        raise Invalid(f"{path}: {msg}")


def _is_count(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def validate_histogram(hist, where):
    _require(isinstance(hist, dict), where, "histogram must be an object")
    for key in ("count", "p50_upper_ns", "p90_upper_ns", "p99_upper_ns",
                "max_upper_ns", "buckets"):
        _require(key in hist, where, f"missing {key!r}")
    _require(_is_count(hist["count"]), where, "count must be a non-negative int")
    buckets = hist["buckets"]
    _require(isinstance(buckets, list), where, "buckets must be an array")
    total = 0
    prev_upper = None
    for i, b in enumerate(buckets):
        _require(isinstance(b, list) and len(b) == 2, where,
                 f"bucket {i} must be an [upper_ns, count] pair")
        upper, count = b
        _require(isinstance(upper, int) and not isinstance(upper, bool), where,
                 f"bucket {i} upper bound must be an int")
        _require(_is_count(count) and count > 0, where,
                 f"bucket {i} count must be a positive int (empty buckets are "
                 "elided)")
        if prev_upper is not None:
            _require(upper > prev_upper, where,
                     f"bucket {i} upper {upper} not > previous {prev_upper}")
        prev_upper = upper
        total += count
    _require(total == hist["count"], where,
             f"count {hist['count']} != sum of buckets {total}")
    q = [hist["p50_upper_ns"], hist["p90_upper_ns"], hist["p99_upper_ns"],
         hist["max_upper_ns"]]
    for v in q:
        _require(isinstance(v, int) and not isinstance(v, bool) and v >= 0,
                 where, "quantile upper bounds must be non-negative ints")
    _require(q == sorted(q), where,
             f"quantile upper bounds not monotone: p50/p90/p99/max = {q}")
    if hist["count"] == 0:
        _require(q == [0, 0, 0, 0], where,
                 "an empty histogram must report all-zero quantiles")


def validate(doc, path, in_flight=False):
    _require(isinstance(doc, dict), path, "snapshot must be a JSON object")
    _require(doc.get("schema") == "c2sl-metrics-v1", path,
             f"schema is {doc.get('schema')!r}, want 'c2sl-metrics-v1'")
    _require(isinstance(doc.get("source"), str) and doc["source"], path,
             "source must be a non-empty string")
    enabled = doc.get("telemetry_enabled")
    _require(isinstance(enabled, bool), path,
             "telemetry_enabled must be a boolean")

    for key in ("lanes", "ops_total"):
        _require(_is_count(doc.get(key)), path,
                 f"{key} must be a non-negative int")
    _require(_is_count(doc.get("ops_total_scan")), path,
             "ops_total_scan must be a non-negative int")
    if enabled:
        if in_flight:
            _require(doc["ops_total_scan"] <= doc["ops_total"], path,
                     f"lane scan {doc['ops_total_scan']} exceeds the digest "
                     f"read {doc['ops_total']} (the digest trails no one: "
                     "every lane-cell write precedes its digest FAA)")
        else:
            _require(doc["ops_total_scan"] == doc["ops_total"], path,
                     f"quiesced snapshot disagrees: digest {doc['ops_total']}"
                     f" != lane scan {doc['ops_total_scan']} (pass --in-flight"
                     " if writers were live at snapshot time)")

    ops = doc.get("op_counts")
    _require(isinstance(ops, dict), path, "op_counts must be an object")
    for kind in OP_KINDS:
        _require(kind in ops, f"{path}:op_counts", f"missing op kind {kind!r}")
        _require(_is_count(ops[kind]), f"{path}:op_counts",
                 f"{kind} must be a non-negative int")

    lat = doc.get("op_latency_ns")
    _require(isinstance(lat, dict), path, "op_latency_ns must be an object")
    for kind, hist in lat.items():
        _require(kind in OP_KINDS, f"{path}:op_latency_ns",
                 f"unknown op kind {kind!r}")
        validate_histogram(hist, f"{path}:op_latency_ns:{kind}")
    _require("open_wait_ns" in doc, path, "missing open_wait_ns")
    validate_histogram(doc["open_wait_ns"], f"{path}:open_wait_ns")

    session = doc.get("session")
    _require(isinstance(session, dict), path, "session must be an object")
    for key in SESSION_KEYS:
        _require(key in session, f"{path}:session", f"missing {key!r}")
        _require(_is_count(session[key]), f"{path}:session",
                 f"{key} must be a non-negative int")
    _require(session["handoff_deliveries"] <= session["handoff_enqueued"],
             f"{path}:session", "more handoff deliveries than enqueues")
    _require(session["handoff_revocations"] <= session["handoff_enqueued"],
             f"{path}:session", "more handoff revocations than enqueues")

    events = doc.get("events")
    _require(isinstance(events, dict), path, "events must be an object")
    for kind in EVENT_KINDS:
        _require(kind in events, f"{path}:events", f"missing event {kind!r}")
        _require(_is_count(events[kind]), f"{path}:events",
                 f"{kind} must be a non-negative int")
    _require(events["epochs_published"] <= events["resize_claims"],
             f"{path}:events",
             f"more epoch publishes ({events['epochs_published']}) than "
             f"resize claims ({events['resize_claims']}): every publish "
             "follows a successful one-shot claim (poisoned or abandoned "
             "claims never publish)")

    # Per-shard heat gauges: keyed ops per routing bucket plus the
    # max-over-mean skew. Aggregate ops carry no shard, so the bucket sum can
    # only undershoot ops_total; the reported imbalance must match the array
    # it summarises and is >= 1.0 by construction (max >= mean).
    shard_ops = doc.get("shard_ops")
    _require(isinstance(shard_ops, list), path, "shard_ops must be an array")
    for i, v in enumerate(shard_ops):
        _require(_is_count(v), f"{path}:shard_ops",
                 f"bucket {i} must be a non-negative int")
    imbalance = doc.get("shard_imbalance")
    _require(isinstance(imbalance, (int, float))
             and not isinstance(imbalance, bool), path,
             "shard_imbalance must be a number")
    if enabled:
        _require(sum(shard_ops) <= doc["ops_total"], path,
                 f"shard_ops sum {sum(shard_ops)} exceeds ops_total "
                 f"{doc['ops_total']} (aggregate ops carry no shard; the "
                 "bucket sum can only undershoot)")
        _require(imbalance >= 1.0 - 1e-9, path,
                 f"shard_imbalance {imbalance} < 1.0 (max-over-mean cannot "
                 "dip below balanced)")
        if shard_ops and sum(shard_ops) > 0:
            mean = sum(shard_ops) / len(shard_ops)
            _require(abs(imbalance - max(shard_ops) / mean) < 1e-6, path,
                     f"shard_imbalance {imbalance} does not match its own "
                     f"shard_ops array (max {max(shard_ops)} / mean {mean})")

    profile = doc.get("prim_profile")
    if profile is not None:
        _require(isinstance(profile, dict), path,
                 "prim_profile must be an object")
        for kind, row in profile.items():
            where = f"{path}:prim_profile:{kind}"
            _require(kind in OP_KINDS, where, f"unknown op kind {kind!r}")
            _require(isinstance(row, dict), where, "row must be an object")
            for key in ("faa", "tas", "swap", "ops"):
                _require(key in row, where, f"missing {key!r}")
                v = row[key]
                _require(isinstance(v, (int, float)) and not isinstance(v, bool)
                         and v >= 0, where, f"{key} must be non-negative")
            _require(row["ops"] > 0, where,
                     "profiled rows must record how many ops they averaged")


def load(path, in_flight=False):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise Invalid(f"{path}: not JSON: {e}")
    validate(doc, path, in_flight=in_flight)
    return doc


def diff_counters(name, base, curr, gate_monotone, failures, gate_keys=None):
    """Print deltas; with gate_monotone, flag negative ones as failures.

    gate_keys, when given, restricts the monotone gate to that subset of
    counters (the others are still printed ungated).
    """
    keys = sorted(set(base) | set(curr))
    for key in keys:
        b = base.get(key, 0)
        c = curr.get(key, 0)
        if b == c == 0:
            continue
        delta = c - b
        flag = ""
        if (gate_monotone and delta < 0
                and (gate_keys is None or key in gate_keys)):
            flag = "  NEGATIVE-DELTA"
            failures.append((name, key, delta))
        print(f"{name:<16} {key:<22} {b:>14} {c:>14} {delta:>+10}{flag}")


def diff_histograms(name, base, curr):
    keys = sorted(set(base) | set(curr))
    empty = {"count": 0, "p50_upper_ns": 0, "p99_upper_ns": 0}
    for key in keys:
        b = base.get(key, empty)
        c = curr.get(key, empty)
        if b["count"] == c["count"] == 0:
            continue
        print(f"{name:<16} {key:<22} count {b['count']} -> {c['count']}, "
              f"p50_upper {b['p50_upper_ns']} -> {c['p50_upper_ns']} ns, "
              f"p99_upper {b['p99_upper_ns']} -> {c['p99_upper_ns']} ns")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="snapshot to validate (and diff against)")
    ap.add_argument("current", nargs="?", default=None,
                    help="second snapshot: print current - baseline deltas")
    ap.add_argument("--in-flight", action="store_true",
                    help="snapshot was taken with writers live: relax the "
                         "quiesced digest==scan check to scan<=digest")
    ap.add_argument("--gate-monotone", action="store_true",
                    help="diff mode: exit 1 if any op count went backwards "
                         "(two runs of one workload must not lose updates)")
    args = ap.parse_args()

    try:
        base = load(args.baseline, in_flight=args.in_flight)
        curr = (load(args.current, in_flight=args.in_flight)
                if args.current else None)
    except (OSError, Invalid) as e:
        print(f"metrics_diff: {e}", file=sys.stderr)
        return 2

    if curr is None:
        print(f"metrics_diff: {args.baseline} is a valid c2sl-metrics-v1 "
              f"snapshot (source {base['source']!r}, telemetry "
              f"{'on' if base['telemetry_enabled'] else 'off'}, "
              f"ops_total {base['ops_total']})")
        return 0

    if not (base["telemetry_enabled"] and curr["telemetry_enabled"]):
        print("metrics_diff: at least one snapshot has telemetry disabled — "
              "both are valid, nothing to diff")
        return 0

    failures = []
    print(f"{'section':<16} {'counter':<22} {'baseline':>14} {'current':>14} "
          f"{'delta':>10}")
    diff_counters("totals", {"ops_total": base["ops_total"]},
                  {"ops_total": curr["ops_total"]}, args.gate_monotone,
                  failures)
    diff_counters("op_counts", base["op_counts"], curr["op_counts"],
                  args.gate_monotone, failures)
    diff_counters("session", base["session"], curr["session"], False, [])
    diff_counters("events", base["events"], curr["events"],
                  args.gate_monotone, failures, gate_keys=MONOTONE_EVENTS)
    diff_histograms("op_latency_ns", base["op_latency_ns"],
                    curr["op_latency_ns"])
    diff_histograms("open_wait_ns", {"open_wait": base["open_wait_ns"]},
                    {"open_wait": curr["open_wait_ns"]})

    if failures:
        print(f"\nmetrics_diff: {len(failures)} op counter(s) went backwards "
              "between runs", file=sys.stderr)
        return 1
    print("\nmetrics_diff: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
