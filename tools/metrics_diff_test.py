#!/usr/bin/env python3
"""Unit tests for tools/metrics_diff.py (stdlib unittest; a ctest entry).

Covers: structural validation (schema, op-count coverage, histogram
consistency, the quiesced digest==scan invariant and its --in-flight
relaxation, handoff accounting), the disabled-flavour path, and the diff
gates (monotone op counts).
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import metrics_diff  # noqa: E402


def snapshot(**overrides):
    """A minimal valid enabled snapshot; override leaf sections per test."""
    doc = {
        "schema": "c2sl-metrics-v1",
        "source": "metrics_diff_test",
        "telemetry_enabled": True,
        "lanes": 2,
        "ops_total": 12,
        "ops_total_scan": 12,
        "op_counts": {k: 0 for k in metrics_diff.OP_KINDS},
        "op_latency_ns": {},
        "open_wait_ns": {"count": 0, "p50_upper_ns": 0, "p90_upper_ns": 0,
                         "p99_upper_ns": 0, "max_upper_ns": 0, "buckets": []},
        "session": {k: 0 for k in metrics_diff.SESSION_KEYS},
        "events": {k: 0 for k in metrics_diff.EVENT_KINDS},
        "shard_ops": [4, 2, 4],
        "shard_imbalance": 1.2,
    }
    doc["op_counts"]["counter_inc"] = 10
    doc["op_counts"]["session_open"] = 2
    doc.update(overrides)
    return doc


def hist(pairs):
    counts = sum(c for _, c in pairs)
    uppers = [u for u, _ in pairs]

    def quantile(q):
        if counts == 0:
            return 0
        target = int(q * counts)
        if target < q * counts:
            target += 1
        target = max(1, min(counts, target))
        seen = 0
        for u, c in pairs:
            seen += c
            if seen >= target:
                return u
        return uppers[-1]

    return {"count": counts, "p50_upper_ns": quantile(0.50),
            "p90_upper_ns": quantile(0.90), "p99_upper_ns": quantile(0.99),
            "max_upper_ns": uppers[-1] if pairs else 0,
            "buckets": [[u, c] for u, c in pairs]}


class ValidateTest(unittest.TestCase):
    def assert_invalid(self, doc, fragment, in_flight=False):
        with self.assertRaises(metrics_diff.Invalid) as ctx:
            metrics_diff.validate(doc, "t", in_flight=in_flight)
        self.assertIn(fragment, str(ctx.exception))

    def test_valid_snapshot_passes(self):
        metrics_diff.validate(snapshot(), "t")

    def test_wrong_schema_rejected(self):
        self.assert_invalid(snapshot(schema="c2sl-bench-v1"), "schema")

    def test_missing_op_kind_rejected(self):
        doc = snapshot()
        del doc["op_counts"]["tas_reset"]
        self.assert_invalid(doc, "tas_reset")

    def test_negative_count_rejected(self):
        doc = snapshot()
        doc["op_counts"]["max_read"] = -1
        self.assert_invalid(doc, "max_read")

    def test_quiesced_digest_scan_disagreement_rejected(self):
        doc = snapshot(ops_total_scan=11)
        self.assert_invalid(doc, "disagrees")
        # --in-flight tolerates a trailing scan (writers between their lane
        # cell write and digest step)...
        metrics_diff.validate(doc, "t", in_flight=True)
        # ...but never a LEADING scan: the digest trails no one.
        self.assert_invalid(snapshot(ops_total_scan=13), "exceeds",
                            in_flight=True)

    def test_disabled_snapshot_skips_quiescence_check(self):
        doc = snapshot(telemetry_enabled=False, ops_total=0, ops_total_scan=0)
        metrics_diff.validate(doc, "t")

    def test_histogram_count_must_match_buckets(self):
        h = hist([(127, 3), (255, 1)])
        h["count"] = 5
        self.assert_invalid(snapshot(open_wait_ns=h), "sum of buckets")

    def test_histogram_uppers_must_increase(self):
        h = hist([(255, 1), (127, 1)])
        self.assert_invalid(snapshot(open_wait_ns=h), "not > previous")

    def test_histogram_quantiles_must_be_monotone(self):
        h = hist([(127, 4)])
        h["p99_upper_ns"] = 63
        self.assert_invalid(snapshot(open_wait_ns=h), "not monotone")

    def test_unknown_latency_op_rejected(self):
        doc = snapshot()
        doc["op_latency_ns"]["warp_drive"] = hist([(127, 1)])
        self.assert_invalid(doc, "warp_drive")

    def test_handoff_accounting(self):
        doc = snapshot()
        doc["session"]["handoff_deliveries"] = 3
        doc["session"]["handoff_enqueued"] = 2
        self.assert_invalid(doc, "deliveries")

    def test_publish_without_claim_rejected(self):
        doc = snapshot()
        doc["events"]["resize_claims"] = 1
        doc["events"]["epochs_published"] = 2
        self.assert_invalid(doc, "one-shot claim")
        # Claims without publishes are fine: poisoned/abandoned resizes.
        doc["events"]["epochs_published"] = 0
        metrics_diff.validate(doc, "t")

    def test_shard_ops_sum_must_not_exceed_ops_total(self):
        doc = snapshot(shard_ops=[10, 10, 10], shard_imbalance=1.0)
        self.assert_invalid(doc, "exceeds ops_total")

    def test_shard_imbalance_below_one_rejected(self):
        doc = snapshot(shard_ops=[0, 0, 0], shard_imbalance=0.5)
        self.assert_invalid(doc, "< 1.0")

    def test_shard_imbalance_must_match_its_array(self):
        doc = snapshot(shard_imbalance=3.0)  # shard_ops [4,2,4] -> 1.2
        self.assert_invalid(doc, "does not match its own shard_ops")

    def test_empty_shard_ops_with_unit_imbalance_passes(self):
        metrics_diff.validate(snapshot(shard_ops=[], shard_imbalance=1.0), "t")

    def test_negative_shard_bucket_rejected(self):
        doc = snapshot(shard_ops=[4, -2, 4])
        self.assert_invalid(doc, "bucket 1")

    def test_prim_profile_rows_checked(self):
        doc = snapshot(prim_profile={"counter_inc":
                                     {"faa": 2.0, "tas": 1.0, "swap": 0,
                                      "ops": 256}})
        metrics_diff.validate(doc, "t")
        doc["prim_profile"]["counter_inc"]["ops"] = 0
        self.assert_invalid(doc, "averaged")


class CliTest(unittest.TestCase):
    def run_cli(self, docs, *flags):
        paths = []
        with tempfile.TemporaryDirectory() as tmp:
            for i, doc in enumerate(docs):
                p = os.path.join(tmp, f"m{i}.json")
                with open(p, "w") as f:
                    json.dump(doc, f)
                paths.append(p)
            proc = subprocess.run(
                [sys.executable, metrics_diff.__file__, *paths, *flags],
                capture_output=True, text=True)
        return proc

    def test_validate_mode_accepts_valid(self):
        proc = self.run_cli([snapshot()])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("valid c2sl-metrics-v1", proc.stdout)

    def test_validate_mode_rejects_malformed(self):
        proc = self.run_cli([{"schema": "nope"}])
        self.assertEqual(proc.returncode, 2)

    def test_diff_prints_deltas(self):
        curr = copy.deepcopy(snapshot())
        curr["ops_total"] = 14
        curr["ops_total_scan"] = 14
        curr["op_counts"]["counter_inc"] = 12
        proc = self.run_cli([snapshot(), curr])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("counter_inc", proc.stdout)
        self.assertIn("+2", proc.stdout)

    def test_gate_monotone_fails_on_backwards_counter(self):
        curr = copy.deepcopy(snapshot())
        curr["op_counts"]["counter_inc"] = 4
        curr["ops_total"] = 6
        curr["ops_total_scan"] = 6
        curr["shard_ops"] = [2, 1, 2]  # keep the heat sum within ops_total
        curr["shard_imbalance"] = 1.2
        proc = self.run_cli([snapshot(), curr], "--gate-monotone")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("backwards", proc.stderr)
        # Without the gate the same diff is informational.
        proc = self.run_cli([snapshot(), curr])
        self.assertEqual(proc.returncode, 0)

    def test_gate_monotone_fails_on_backwards_migrated_keys(self):
        base = snapshot()
        base["events"]["migrated_keys"] = 7
        curr = copy.deepcopy(snapshot())
        curr["events"]["migrated_keys"] = 3
        proc = self.run_cli([base, curr], "--gate-monotone")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("backwards", proc.stderr)

    def test_gate_monotone_tolerates_backwards_claim_attempts(self):
        # Claim counters record racy ATTEMPTS — two runs of one workload can
        # land on either side of each other without a telemetry bug.
        base = snapshot()
        base["events"]["resize_claims"] = 5
        curr = copy.deepcopy(snapshot())
        curr["events"]["resize_claims"] = 2
        proc = self.run_cli([base, curr], "--gate-monotone")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_disabled_snapshot_diff_is_a_note_not_an_error(self):
        off = snapshot(telemetry_enabled=False, ops_total=0, ops_total_scan=0,
                       op_counts={k: 0 for k in metrics_diff.OP_KINDS})
        proc = self.run_cli([snapshot(), off])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("nothing to diff", proc.stdout)


if __name__ == "__main__":
    unittest.main()
