#!/usr/bin/env python3
"""Offline linearization-witness auditor for c2sl-trace-v1 traces.

    tools/trace_audit.py TRACE.json [--slack-ns N] [--allow-drops] [-v]

A C2SL_TRACE=1 build records one fixed-size record per instrumented C2Store
op into lane-local rings; tel::trace_to_json drains them into one
"c2sl-trace-v1" document. Each journal-facet op carries its LINEARIZATION
WITNESS — the op's own FAA step, per the paper's strong-linearizability
construction — so validating a trace is a deterministic O(n log n) replay,
not an NP-hard order search. This tool proves three claims offline:

  1. REPLAY EXACTNESS — the witnessed order, replayed through a sequential
     model of the store, reproduces every recorded result exactly:
       * journal tickets are unique, and (absent drops) dense 0..N-1;
       * counter_inc results replay each routing bucket's pre-increment
         sequence: the multiset of `result` (the shard F&I's prev) per
         bucket is exactly {0..n-1} (checked only absent resize records —
         per-epoch shard counters restart under live resizing);
       * each snapshot's result equals the number of counter_inc records
         with witness below its tail (transfers net to zero, so the ledger
         sum IS the inc count — the conservation identity);
       * each transfer's result is its own ticket; resize epochs strictly
         increase in ticket order.
  2. REAL-TIME PRECEDENCE — if op A's response precedes op B's invocation
     (by more than --slack-ns, absorbing unfenced TSC skew across cores),
     then witness(A) precedes witness(B). Writes occupy odd positions
     2*ticket+1 and snapshots even positions 2*tail, so "write ticket t
     before snapshot tail T" is exactly 2t+1 < 2T. Checked in one sorted
     sweep; a violation names both records. The same sweep checks the
     monotone aggregates (counter_sum / global_max digest reads) against
     real time, and bounds each against the incs / max_writes that
     provably completed before it or could have reached it.
  3. CONSERVATION AT EVERY TRANSFER CUT — replaying incs and transfers in
     witness order, the sum of per-bucket ledger balances at each transfer's
     position equals the incs replayed so far, and every snapshot cut
     reproduces the recorded total.

Per-lane sanity rides along: a lane is one session at a time, so its t0s
must be non-decreasing and its journal-facet positions strictly increasing
(snapshots may repeat a tail).

Unwitnessed records (plain reads, TAS/set ops, scan-based aggregates —
deliberately unwitnessed: the scans are not strongly linearizable) are
exempt from ordering claims but still schema-checked.

A trace with dropped records (ring overflow) fails the audit unless
--allow-drops is given, which keeps the order checks but disables every
completeness-dependent check (ticket density, inc replay, snapshot totals,
aggregate bounds). A trace from a C2SL_TRACE=0 build (trace_enabled false)
is vacuously valid.

Exit status: 0 audit passed, 1 a claim was refuted (the violating records
are named), 2 malformed input. Standard library only.
"""

import argparse
import bisect
import json
import sys

JOURNAL_OPS = ("counter_inc", "max_write", "transfer", "resize")
AGG_OPS = ("counter_sum", "global_max")


class Refuted(Exception):
    pass


def die(msg):
    print(f"trace_audit: malformed input: {msg}", file=sys.stderr)
    sys.exit(2)


class Rec:
    __slots__ = ("lane", "idx", "op", "key", "key_b", "arg", "result",
                 "witness", "t0", "t1", "epoch", "pos")

    def __init__(self, lane, idx, r):
        self.lane = lane
        self.idx = idx
        try:
            self.op = r["op"]
            self.arg = int(r["arg"])
            self.result = int(r["result"])
            self.t0 = int(r["t0_ns"])
            self.t1 = int(r["t1_ns"])
        except (KeyError, TypeError, ValueError) as e:
            die(f"lane {lane} record {idx}: {e!r}")
        self.key = int(r.get("key", -1))
        self.key_b = int(r.get("key_b", -1))
        self.witness = int(r.get("witness", -1))
        self.epoch = int(r.get("epoch", -1))
        if self.t1 < self.t0:
            die(f"{self.name()}: t1 < t0")
        # Total witness position: writes odd (2w+1), snapshot tails even (2w)
        # — write ticket t precedes snapshot tail T iff 2t+1 < 2T iff t < T.
        if self.witness >= 0:
            self.pos = 2 * self.witness + (0 if self.op == "snapshot" else 1)
        else:
            self.pos = -1

    def name(self):
        w = f" witness={self.witness}" if self.witness >= 0 else ""
        return f"lane {self.lane} record #{self.idx} [{self.op}{w}]"


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(str(e))
    if doc.get("schema") != "c2sl-trace-v1":
        die(f"schema is {doc.get('schema')!r}, want c2sl-trace-v1")
    for k in ("trace_enabled", "records_total", "dropped_total", "lanes"):
        if k not in doc:
            die(f"missing field {k!r}")
    return doc


def audit(doc, slack_ns, allow_drops, verbose):
    """Raises Refuted on the first refuted claim; returns a stats dict."""
    if not doc["trace_enabled"]:
        return {"enabled": False, "records": 0}

    recs = []
    for lane_obj in doc["lanes"]:
        lane = lane_obj.get("lane", -1)
        for i, r in enumerate(lane_obj.get("records", [])):
            recs.append(Rec(lane, i, r))
    if sum(len(l.get("records", [])) for l in doc["lanes"]) != doc["records_total"]:
        die("records_total does not match the lane arrays")

    dropped = int(doc["dropped_total"])
    complete = dropped == 0
    if dropped and not allow_drops:
        raise Refuted(
            f"{dropped} records dropped to ring overflow; the witness "
            f"history is incomplete (re-run with a larger C2SL_TRACE_CAP, "
            f"or pass --allow-drops to audit order claims only)")

    # --- per-lane sanity: sequential sessions --------------------------------
    by_lane = {}
    for r in recs:
        by_lane.setdefault(r.lane, []).append(r)
    for lane, rs in by_lane.items():
        prev_t0 = None
        prev_pos = None
        for r in rs:
            if prev_t0 is not None and r.t0 < prev_t0:
                raise Refuted(
                    f"lane {lane} t0 went backwards at {r.name()} "
                    f"({r.t0} < {prev_t0}): a lane is one session at a time")
            prev_t0 = r.t0
            if r.op in JOURNAL_OPS or r.op == "snapshot":
                if r.pos >= 0:
                    if prev_pos is not None:
                        strict = not (r.op == "snapshot" and r.pos == prev_pos[0])
                        if r.pos < prev_pos[0] or (strict and r.pos == prev_pos[0]):
                            raise Refuted(
                                f"per-lane witness order broken: {r.name()} "
                                f"does not follow {prev_pos[1]} on the same "
                                f"lane (program order is real-time order)")
                    prev_pos = (r.pos, r.name())

    # --- claim 1: replay exactness -------------------------------------------
    journal = sorted((r for r in recs if r.pos >= 0 and r.op in JOURNAL_OPS),
                     key=lambda r: r.witness)
    tickets = {}
    for r in journal:
        if r.witness in tickets:
            raise Refuted(
                f"duplicate journal ticket {r.witness}: {r.name()} and "
                f"{tickets[r.witness].name()} — the journal FAA issues each "
                f"ticket once")
        tickets[r.witness] = r
    if complete and journal:
        n = journal[-1].witness + 1
        if len(journal) != n:
            missing = next(t for t in range(n) if t not in tickets)
            raise Refuted(
                f"journal tickets have a gap at {missing} (max ticket "
                f"{n - 1}, {len(journal)} witnessed records): a complete "
                f"trace covers every journal append")

    resizes = [r for r in journal if r.op == "resize"]
    for a, b in zip(resizes, resizes[1:]):
        if not (b.epoch > a.epoch and b.arg > a.arg):
            raise Refuted(
                f"resize sequence not monotone: {b.name()} (epoch {b.epoch}, "
                f"shards {b.arg}) after {a.name()} (epoch {a.epoch}, "
                f"shards {a.arg})")

    for r in journal:
        if r.op == "transfer" and r.result != r.witness:
            raise Refuted(
                f"{r.name()}: transfer result {r.result} != its own ticket "
                f"— the returned receipt IS the witness")

    # Sequential replay in witness order: per-bucket ledger balances and the
    # running inc count. Conservation at every transfer cut (claim 3), inc
    # prev-sequence exactness, and snapshot totals (claim 1) in one pass.
    snapshots = sorted((r for r in recs if r.op == "snapshot" and r.pos >= 0),
                       key=lambda r: r.pos)
    check_incs = complete and not resizes
    balances = {}
    inc_count = 0
    next_prev = {}  # bucket -> expected multiset via counting
    prev_seen = {}
    si = 0
    for r in journal:
        # Snapshots whose tail cuts before this ticket replay here.
        while si < len(snapshots) and snapshots[si].pos < r.pos:
            s = snapshots[si]
            if complete and s.result != inc_count:
                raise Refuted(
                    f"{s.name()} (tail {s.witness}) recorded total "
                    f"{s.result}, but replaying its witness prefix yields "
                    f"{inc_count} incs — the snapshot does not match the "
                    f"cut its own witness claims")
            if sum(balances.values()) != inc_count:
                raise Refuted(
                    f"conservation broken at {s.name()}: ledger sum "
                    f"{sum(balances.values())} != {inc_count} incs")
            si += 1
        if r.op == "counter_inc":
            balances[r.key] = balances.get(r.key, 0) + 1
            inc_count += 1
            if check_incs:
                prev_seen.setdefault(r.key, []).append(r)
                next_prev[r.key] = next_prev.get(r.key, 0) + 1
        elif r.op == "transfer":
            balances[r.key] = balances.get(r.key, 0) - r.arg
            balances[r.key_b] = balances.get(r.key_b, 0) + r.arg
            if sum(balances.values()) != inc_count:
                raise Refuted(
                    f"conservation broken at transfer cut {r.name()}: "
                    f"ledger sum {sum(balances.values())} != "
                    f"{inc_count} incs (transfers must net to zero)")
    for si in range(si, len(snapshots)):
        s = snapshots[si]
        if complete and s.result != inc_count:
            raise Refuted(
                f"{s.name()} (tail {s.witness}) recorded total {s.result}, "
                f"but the full witnessed history yields {inc_count} incs")

    if check_incs:
        for bucket, rs in prev_seen.items():
            got = sorted(r.result for r in rs)
            if got != list(range(len(rs))):
                bad = next(r for r in rs if r.result not in range(len(rs))
                           or got.count(r.result) > 1)
                raise Refuted(
                    f"bucket {bucket} inc results are not a permutation of "
                    f"0..{len(rs) - 1} (got {got[:8]}...): e.g. {bad.name()} "
                    f"returned prev {bad.result} — sequential replay of the "
                    f"shard F&I cannot reproduce this")

    # --- claim 2: real-time precedence ---------------------------------------
    # One sweep per witness domain: sort by invocation; advance a completion
    # pointer over response-sorted records; any record whose response (plus
    # slack) precedes the current invocation must have a smaller position.
    def precedence_sweep(rs, domain):
        by_t0 = sorted(rs, key=lambda r: r.t0)
        by_t1 = sorted(rs, key=lambda r: r.t1)
        j = 0
        best = None  # (pos, rec) with max pos among completed
        for b in by_t0:
            while j < len(by_t1) and by_t1[j].t1 + slack_ns < b.t0:
                if best is None or by_t1[j].pos > best[0]:
                    best = (by_t1[j].pos, by_t1[j])
                j += 1
            if best is not None and best[0] > b.pos:
                a = best[1]
                raise Refuted(
                    f"real-time precedence violated in the {domain} domain: "
                    f"{a.name()} responded at {a.t1}ns, before {b.name()} "
                    f"invoked at {b.t0}ns (slack {slack_ns}ns), yet its "
                    f"witness position {best[0]} > {b.pos} — a strongly "
                    f"linearizable history cannot reorder them")

    precedence_sweep([r for r in recs if r.pos >= 0
                      and (r.op in JOURNAL_OPS or r.op == "snapshot")],
                     "journal")
    sums = [r for r in recs if r.op == "counter_sum" and r.witness >= 0]
    maxes = [r for r in recs if r.op == "global_max" and r.witness >= 0]
    precedence_sweep(sums, "counter-sum digest")
    precedence_sweep(maxes, "global-max digest")

    for r in sums + maxes:
        if r.result != r.witness:
            raise Refuted(
                f"{r.name()}: aggregate result {r.result} != witness "
                f"{r.witness} — the digest value read IS the witness")

    # Aggregate bounds: a digest read must see at least every inc/max_write
    # that completed before it invoked, and at most what had invoked before
    # it responded. Needs the complete history.
    if complete:
        incs = [r for r in recs if r.op == "counter_inc"]
        t1s = sorted(r.t1 for r in incs)
        t0s = sorted(r.t0 for r in incs)
        for s in sums:
            lo = bisect.bisect_left(t1s, s.t0 - slack_ns)
            hi = bisect.bisect_right(t0s, s.t1 + slack_ns)
            if not (lo <= s.witness <= hi):
                raise Refuted(
                    f"{s.name()}: digest value {s.witness} outside its "
                    f"real-time bounds [{lo}, {hi}] ({lo} incs completed "
                    f"before it invoked, {hi} had invoked before it "
                    f"responded)")
        writes = [r for r in recs if r.op == "max_write"]
        w_t1 = sorted((r.t1, r.arg) for r in writes)
        w_keys = [t1 for t1, _ in w_t1]
        prefix_max = []
        run = 0
        for _, arg in w_t1:
            run = max(run, arg)
            prefix_max.append(run)
        all_max = max((r.arg for r in writes), default=0)
        for m in maxes:
            k = bisect.bisect_left(w_keys, m.t0 - slack_ns)
            lo = prefix_max[k - 1] if k > 0 else 0
            if not (lo <= m.witness <= max(all_max, 0)):
                raise Refuted(
                    f"{m.name()}: global max {m.witness} outside its "
                    f"real-time bounds [{lo}, {max(all_max, 0)}]")

    stats = {
        "enabled": True,
        "records": len(recs),
        "lanes": len(by_lane),
        "journal": len(journal),
        "snapshots": len(snapshots),
        "transfers": sum(1 for r in journal if r.op == "transfer"),
        "resizes": len(resizes),
        "aggregates": len(sums) + len(maxes),
        "dropped": dropped,
    }
    if verbose:
        print(f"trace_audit: {stats}")
    return stats


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Audit a c2sl-trace-v1 linearization-witness trace.")
    ap.add_argument("trace", help="c2sl-trace-v1 JSON file")
    ap.add_argument("--slack-ns", type=int, default=1000,
                    help="real-time slack absorbing unfenced TSC skew "
                         "across cores (default %(default)s)")
    ap.add_argument("--allow-drops", action="store_true",
                    help="audit order claims even when the ring overflowed "
                         "(completeness-dependent checks are skipped)")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    doc = load(args.trace)
    try:
        stats = audit(doc, args.slack_ns, args.allow_drops, args.verbose)
    except Refuted as e:
        print(f"trace_audit: REFUTED: {e}", file=sys.stderr)
        return 1
    if not stats["enabled"]:
        print("trace_audit: trace_enabled=false (C2SL_TRACE=0 build); "
              "vacuously valid")
        return 0
    print(f"trace_audit: OK — {stats['records']} records on "
          f"{stats['lanes']} lanes: {stats['journal']} journal-witnessed "
          f"({stats['transfers']} transfers, {stats['resizes']} resizes), "
          f"{stats['snapshots']} snapshots, {stats['aggregates']} aggregate "
          f"reads; replay, precedence and conservation all hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
