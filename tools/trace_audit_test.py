#!/usr/bin/env python3
"""Unit tests for tools/trace_audit.py (stdlib unittest; a ctest entry).

Synthetic c2sl-trace-v1 documents exercise every claim the auditor proves —
replay exactness (ticket uniqueness/density, per-bucket inc sequences,
snapshot totals, transfer receipts, resize monotonicity), real-time
precedence in both witness domains, conservation at transfer cuts, per-lane
order, drop handling, and the disabled-flavour path. The negative control is
the checked-in tools/fixtures/trace_swapped_witness.json: a real-time
precedence violation the auditor MUST refute naming both records (run
through the CLI, asserting exit != 0, exactly as CI runs it).
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import trace_audit  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURE = os.path.join(HERE, "fixtures", "trace_swapped_witness.json")


def rec(op, t0, t1, key=None, key_b=None, arg=0, result=0, witness=None,
        epoch=None):
    r = {"op": op, "arg": arg, "result": result, "t0_ns": t0, "t1_ns": t1}
    if key is not None:
        r["key"] = key
    if key_b is not None:
        r["key_b"] = key_b
    if witness is not None:
        r["witness"] = witness
    if epoch is not None:
        r["epoch"] = epoch
    return r


def doc(*lanes, dropped=0, enabled=True):
    lane_objs = [{"lane": i, "dropped": 0, "records": list(rs)}
                 for i, rs in enumerate(lanes)]
    if lane_objs and dropped:
        lane_objs[0]["dropped"] = dropped
    return {
        "schema": "c2sl-trace-v1",
        "source": "trace_audit_test",
        "trace_enabled": enabled,
        "initial_shards": 16,
        "ns_per_tick": 1.0,
        "records_total": sum(len(rs) for rs in lanes),
        "dropped_total": dropped,
        "lanes": lane_objs,
    }


def audit(d, slack_ns=0, allow_drops=False):
    return trace_audit.audit(d, slack_ns, allow_drops, verbose=False)


class PassingTraces(unittest.TestCase):
    def test_empty_trace_is_valid(self):
        self.assertTrue(audit(doc([]))["enabled"])

    def test_disabled_flavour_is_vacuously_valid(self):
        self.assertFalse(audit(doc(enabled=False))["enabled"])

    def test_sequential_history_passes(self):
        # One lane: two incs on bucket 3, a snapshot cutting after them, a
        # max_write, a transfer, a final snapshot.
        rs = [
            rec("counter_inc", 10, 20, key=3, arg=1, result=0, witness=0),
            rec("counter_inc", 30, 40, key=3, arg=1, result=1, witness=1),
            rec("snapshot", 50, 60, arg=2, result=2, witness=2),
            rec("max_write", 70, 80, key=5, arg=9, witness=2),
            rec("transfer", 90, 100, key=3, key_b=5, arg=1, result=3,
                witness=3),
            rec("snapshot", 110, 120, arg=2, result=2, witness=4),
        ]
        stats = audit(doc(rs))
        self.assertEqual(stats["journal"], 4)
        self.assertEqual(stats["snapshots"], 2)
        self.assertEqual(stats["transfers"], 1)

    def test_concurrent_overlap_may_commute(self):
        # Overlapping incs on two lanes: journal order opposite to t0 order
        # is legal — they overlap, so either linearization is admissible.
        a = [rec("counter_inc", 0, 100, key=1, arg=1, result=0, witness=1)]
        b = [rec("counter_inc", 50, 60, key=2, arg=1, result=0, witness=0)]
        audit(doc(a, b))

    def test_slack_absorbs_small_skew(self):
        # a responded 5ns before b invoked but with the larger ticket: fails
        # at slack 0, passes once slack covers the gap (TSC skew).
        a = [rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=1)]
        b = [rec("counter_inc", 15, 30, key=2, arg=1, result=0, witness=0)]
        with self.assertRaisesRegex(trace_audit.Refuted, "precedence"):
            audit(doc(a, b))
        audit(doc(a, b), slack_ns=10)

    def test_aggregates_pass_with_bounds(self):
        rs = [
            rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=0),
            rec("counter_sum", 20, 30, result=1, witness=1),
            rec("max_write", 40, 50, key=2, arg=7, witness=1),
            rec("global_max", 60, 70, result=7, witness=7),
        ]
        self.assertEqual(audit(doc(rs))["aggregates"], 2)

    def test_resize_sequence_passes(self):
        rs = [
            rec("resize", 0, 10, arg=32, result=1, witness=0, epoch=1),
            rec("resize", 20, 30, arg=64, result=1, witness=1, epoch=2),
            # With resizes present the per-bucket prev check is off: a fresh
            # per-epoch shard counter may repeat prev 0.
            rec("counter_inc", 40, 50, key=1, arg=1, result=0, witness=2),
            rec("counter_inc", 60, 70, key=1, arg=1, result=0, witness=3),
        ]
        self.assertEqual(audit(doc(rs))["resizes"], 2)

    def test_repeated_snapshot_tail_is_legal(self):
        rs = [
            rec("snapshot", 0, 10, result=0, witness=0),
            rec("snapshot", 20, 30, result=0, witness=0),
        ]
        audit(doc(rs))


class RefutedTraces(unittest.TestCase):
    def refute(self, d, pattern, **kw):
        with self.assertRaisesRegex(trace_audit.Refuted, pattern):
            audit(d, **kw)

    def test_duplicate_ticket(self):
        a = [rec("counter_inc", 0, 100, key=1, arg=1, result=0, witness=0)]
        b = [rec("counter_inc", 20, 90, key=2, arg=1, result=0, witness=0)]
        self.refute(doc(a, b), "duplicate journal ticket")

    def test_ticket_gap(self):
        rs = [rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=0),
              rec("counter_inc", 20, 30, key=2, arg=1, result=0, witness=2)]
        self.refute(doc(rs), "gap at 1")

    def test_inc_prev_not_a_permutation(self):
        rs = [rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=0),
              rec("counter_inc", 20, 30, key=1, arg=1, result=0, witness=1)]
        self.refute(doc(rs), "not a permutation")

    def test_snapshot_total_mismatch(self):
        # The snapshot's tail cuts between the two incs; its recorded total
        # claims both. Overlapping intervals keep precedence out of the way.
        a = [rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=0),
              rec("counter_inc", 20, 30, key=2, arg=1, result=0, witness=1)]
        b = [rec("snapshot", 5, 200, result=2, witness=1)]
        self.refute(doc(a, b), "snapshot does not match")

    def test_trailing_snapshot_total_mismatch(self):
        rs = [rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=0),
              rec("snapshot", 20, 30, result=0, witness=1)]
        self.refute(doc(rs), "full witnessed history")

    def test_transfer_receipt_mismatch(self):
        rs = [rec("transfer", 0, 10, key=1, key_b=2, arg=5, result=9,
                  witness=0)]
        self.refute(doc(rs), "its own ticket")

    def test_resize_epoch_regression(self):
        rs = [rec("resize", 0, 10, arg=32, witness=0, epoch=2),
              rec("resize", 20, 30, arg=64, witness=1, epoch=1)]
        self.refute(doc(rs), "resize sequence not monotone")

    def test_per_lane_witness_regression(self):
        rs = [rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=1),
              rec("counter_inc", 20, 30, key=2, arg=1, result=0, witness=0)]
        self.refute(doc(rs), "per-lane witness order")

    def test_per_lane_time_regression(self):
        rs = [rec("counter_read", 100, 110, key=1),
              rec("counter_read", 50, 60, key=1)]
        self.refute(doc(rs), "t0 went backwards")

    def test_cross_lane_precedence_snapshot_vs_write(self):
        # Snapshot tail 1 claims to cut AFTER the inc with ticket 1... but
        # tail 1 means position 2 > 3? No: write pos 2*1+1=3, tail pos 2*1=2
        # — the snapshot at tail 1 precedes the ticket-1 inc. If the inc
        # RESPONDED before the snapshot invoked, that is a violation.
        a = [rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=0),
             rec("counter_inc", 20, 30, key=2, arg=1, result=0, witness=1)]
        b = [rec("snapshot", 100, 110, result=1, witness=1)]
        self.refute(doc(a, b), "precedence")

    def test_aggregate_monotonicity(self):
        rs = [rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=0),
              rec("counter_inc", 20, 30, key=1, arg=1, result=1, witness=1)]
        sums = [rec("counter_sum", 40, 50, result=2, witness=2),
                rec("counter_sum", 60, 70, result=1, witness=1)]
        self.refute(doc(rs, sums), "counter-sum digest")

    def test_aggregate_result_is_witness(self):
        rs = [rec("counter_sum", 0, 10, result=3, witness=2)]
        self.refute(doc(rs), "digest value read IS the witness")

    def test_counter_sum_bounds(self):
        # Digest claims 2 incs but only one inc exists anywhere in the trace.
        rs = [rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=0),
              rec("counter_sum", 20, 30, result=2, witness=2)]
        self.refute(doc(rs), "outside its real-time bounds")

    def test_global_max_bounds(self):
        rs = [rec("max_write", 0, 10, key=1, arg=5, witness=0),
              rec("global_max", 20, 30, result=9, witness=9)]
        self.refute(doc(rs), "outside its real-time bounds")

    def test_drops_fail_without_flag(self):
        d = doc([rec("counter_inc", 0, 10, key=1, arg=1, result=0,
                     witness=0)], dropped=3)
        self.refute(d, "dropped to ring overflow|records dropped")

    def test_allow_drops_keeps_order_checks(self):
        # With drops allowed: density/totals checks are off (gap at ticket 1
        # tolerated), but precedence still refutes.
        a = [rec("counter_inc", 0, 10, key=1, arg=1, result=0, witness=2)]
        b = [rec("counter_inc", 100, 110, key=2, arg=1, result=0, witness=0)]
        audit(doc(a, dropped=1), allow_drops=True)
        self.refute(doc(a, b, dropped=1), "precedence", allow_drops=True)


class FixtureNegativeControl(unittest.TestCase):
    """The checked-in swapped-witness fixture must be refuted via the CLI."""

    def cli(self, path, *flags):
        return subprocess.run(
            [sys.executable, os.path.join(HERE, "trace_audit.py"), path,
             *flags],
            capture_output=True, text=True)

    def test_fixture_is_refuted_naming_the_pair(self):
        p = self.cli(FIXTURE)
        self.assertNotEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("REFUTED", p.stderr)
        # Both halves of the violating pair are named: lane 0's inc carries
        # witness 1, lane 1's carries witness 0.
        self.assertIn("lane 0", p.stderr)
        self.assertIn("lane 1", p.stderr)
        self.assertIn("witness=1", p.stderr)
        self.assertIn("witness=0", p.stderr)

    def test_unswapping_the_fixture_passes(self):
        with open(FIXTURE) as f:
            d = json.load(f)
        # Swap the witnesses back: lane 0's inc happened first in real time.
        incs = [r for l in d["lanes"] for r in l["records"]
                if r["op"] == "counter_inc"]
        self.assertEqual(len(incs), 2)
        incs[0]["witness"], incs[1]["witness"] = (incs[1]["witness"],
                                                  incs[0]["witness"])
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            json.dump(d, f)
            tmp = f.name
        try:
            p = self.cli(tmp)
            self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
            self.assertIn("OK", p.stdout)
        finally:
            os.unlink(tmp)

    def test_malformed_input_exits_2(self):
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            f.write("{\"schema\": \"nope\"}")
            tmp = f.name
        try:
            p = self.cli(tmp)
            self.assertEqual(p.returncode, 2, p.stdout + p.stderr)
        finally:
            os.unlink(tmp)


class SchemaErrors(unittest.TestCase):
    def test_records_total_mismatch_dies(self):
        d = doc([rec("counter_read", 0, 10, key=1)])
        d["records_total"] = 5
        with self.assertRaises(SystemExit):
            audit(d)


if __name__ == "__main__":
    unittest.main()
